#include "mac/ewmac/ew_mac.hpp"

#include <algorithm>

#include "sim/checkpoint.hpp"

namespace aquamac {

void EwMac::save_state(StateWriter& writer) const {
  SlottedMac::save_state(writer);
  writer.section("ew-mac", [this](StateWriter& w) {
    w.write_u32(static_cast<std::uint32_t>(state_));
    write_handle(w, attempt_event_);
    write_handle(w, timeout_event_);
    write_handle(w, decide_event_);
    w.write_u64(candidates_.size());
    for (const Candidate& candidate : candidates_) {
      w.write_u32(candidate.src);
      w.write_u64(candidate.seq);
      w.write_duration(candidate.data_duration);
      w.write_duration(candidate.delay_to_src);
      w.write_f64(candidate.rp);
    }
    w.write_u32(expected_data_from_);
    w.write_u64(expected_seq_);
    w.write_time(neg_data_begin_);
    w.write_time(neg_ack_slot_start_);
    w.write_bool(extra_.has_value());
    if (extra_) {
      w.write_u32(extra_->j);
      w.write_bool(extra_->j_is_receiver);
      w.write_u64(extra_->seq);
      w.write_duration(extra_->tau_ij);
      w.write_duration(extra_->tau_jk);
      w.write_duration(extra_->neg_data_duration);
      w.write_time(extra_->ack_slot_start);
    }
    w.write_bool(grant_.has_value());
    if (grant_) {
      w.write_u32(grant_->i);
      w.write_u64(grant_->seq);
      w.write_time(grant_->expires);
    }
    write_handle(w, grant_expiry_event_);
    schedule_.save_state(w);
  });
}

void EwMac::restore_state(StateReader& reader) {
  SlottedMac::restore_state(reader);
  reader.section("ew-mac", [this](StateReader& r) {
    state_ = static_cast<State>(r.read_u32());
    read_handle(r, attempt_event_);
    read_handle(r, timeout_event_);
    read_handle(r, decide_event_);
    candidates_.clear();
    const std::uint64_t count = r.read_u64();
    for (std::uint64_t k = 0; k < count; ++k) {
      Candidate candidate{};
      candidate.src = r.read_u32();
      candidate.seq = r.read_u64();
      candidate.data_duration = r.read_duration();
      candidate.delay_to_src = r.read_duration();
      candidate.rp = r.read_f64();
      candidates_.push_back(candidate);
    }
    expected_data_from_ = r.read_u32();
    expected_seq_ = r.read_u64();
    neg_data_begin_ = r.read_time();
    neg_ack_slot_start_ = r.read_time();
    extra_.reset();
    if (r.read_bool()) {
      ExtraPlan plan{};
      plan.j = r.read_u32();
      plan.j_is_receiver = r.read_bool();
      plan.seq = r.read_u64();
      plan.tau_ij = r.read_duration();
      plan.tau_jk = r.read_duration();
      plan.neg_data_duration = r.read_duration();
      plan.ack_slot_start = r.read_time();
      extra_ = plan;
    }
    grant_.reset();
    if (r.read_bool()) {
      ExtraGrant grant{};
      grant.i = r.read_u32();
      grant.seq = r.read_u64();
      grant.expires = r.read_time();
      grant_ = grant;
    }
    read_handle(r, grant_expiry_event_);
    schedule_.restore_state(r);
  });
}

void EwMac::start() {}

void EwMac::set_state(State next) {
  if (next != state_) trace_state(static_cast<int>(state_), static_cast<int>(next));
  state_ = next;
}

// ---------------------------------------------------------------------
// Sender side: negotiated path
// ---------------------------------------------------------------------

void EwMac::handle_packet_enqueued() {
  if (state_ == State::kIdle) schedule_attempt(0);
}

void EwMac::handle_reset() {
  // Outage rejoin: every pending timer and handshake belief predates the
  // outage, so none of it can be trusted.
  sim_.cancel(attempt_event_);
  attempt_event_ = EventHandle{};
  sim_.cancel(timeout_event_);
  timeout_event_ = EventHandle{};
  sim_.cancel(decide_event_);
  decide_event_ = EventHandle{};
  sim_.cancel(grant_expiry_event_);
  grant_expiry_event_ = EventHandle{};
  candidates_.clear();
  extra_.reset();
  grant_.reset();
  expected_data_from_ = kNoNode;
  schedule_ = ScheduleBook{};
  set_state(State::kIdle);
  if (head() != nullptr) schedule_attempt(0);
}

double EwMac::make_priority(const Packet& packet) {
  // §3.1: rp is random but grows with the sender's wait time, so starved
  // senders eventually win contention. The random tiebreak keeps equal
  // waiters from deterministic capture.
  const double jitter = rng_.uniform01();
  if (!config_.enable_priority) return jitter;
  const double waited_slots =
      (sim_.now() - packet.enqueued).to_seconds() / slot_length().to_seconds();
  return waited_slots + jitter;
}

void EwMac::schedule_attempt(std::int64_t extra_slots) {
  if (!attempt_event_.is_null()) return;
  const Time when = next_slot_boundary(sim_.now()) + slot_length() * extra_slots;
  attempt_event_ = sim_.at(when, [this] {
    attempt_event_ = EventHandle{};
    attempt_rts();
  });
}

void EwMac::attempt_rts() {
  const Packet* packet = head();
  if (packet == nullptr || state_ != State::kIdle) return;
  if (quiet_now() || modem_.transmitting() || !candidates_.empty() || grant_.has_value()) {
    const Time resume = std::max(quiet_until(), sim_.now() + slot_length());
    attempt_event_ = sim_.at(next_slot_boundary(resume), [this] {
      attempt_event_ = EventHandle{};
      attempt_rts();
    });
    return;
  }

  Frame rts = make_control(FrameType::kRts, packet->dst);
  rts.seq = packet->id;
  rts.data_duration = data_airtime(packet->bits);
  rts.priority_rp = make_priority(*packet);
  if (const auto delay = neighbors_.delay_to(packet->dst)) rts.pair_delay = *delay;
  if (packet->retries > 0) {
    counters_.retransmitted_frames += 1;
    counters_.retransmitted_bits += rts.size_bits;
  }
  counters_.handshake_attempts += 1;
  if (trace_ != nullptr) {
    TraceEvent ev{};
    ev.kind = TraceEventKind::kSlotBoundary;
    ev.frame_type = FrameType::kRts;
    ev.a = slot_index(sim_.now());
    trace_mac(ev);
  }
  transmit(rts);
  set_state(State::kWaitCts);

  const Time deadline = slot_start(slot_index(sim_.now()) + 3);
  timeout_event_ = sim_.at(deadline, [this] {
    timeout_event_ = EventHandle{};
    if (state_ == State::kWaitCts) {
      counters_.contention_losses += 1;
      if (trace_ != nullptr) {
        TraceEvent ev{};
        ev.kind = TraceEventKind::kContentionLoss;
        if (const Packet* p = head()) {
          ev.dst = p->dst;
          ev.seq = p->id;
        }
        trace_mac(ev);
      }
      // This timeout fires only on true silence: overhearing j's own
      // negotiation cancels it (contention_lost), so no CTS and nothing
      // overheard means the destination may be gone.
      if (const Packet* p = head()) record_handshake_silence(p->dst);
      fail_and_backoff();
    }
  });
}

void EwMac::fail_and_backoff() {
  set_state(State::kIdle);
  extra_.reset();
  Packet* packet = head_mutable();
  if (packet == nullptr) return;
  packet->retries += 1;
  if (packet->retries > config_.max_retries) {
    drop_head_packet();
    if (head() != nullptr) schedule_attempt(0);
    return;
  }
  schedule_attempt(backoff_slots(packet->retries));
}

void EwMac::on_cts(const Frame& frame, const RxInfo& info) {
  const Packet* packet = head();
  if (state_ != State::kWaitCts || packet == nullptr || frame.src != packet->dst ||
      frame.seq != packet->id) {
    return;
  }
  sim_.cancel(timeout_event_);
  timeout_event_ = EventHandle{};
  set_state(State::kWaitAck);

  const Duration tau_sr = info.measured_delay;
  const Packet packet_copy = *packet;
  sim_.at(next_slot_boundary(sim_.now()), [this, packet_copy, tau_sr] {
    if (state_ != State::kWaitAck) return;
    if (modem_.transmitting()) {
      // Extremely rare (e.g. an EXC grant still radiating at the
      // boundary): abandoning beats wedging in WaitAck with no timeout.
      fail_and_backoff();
      return;
    }
    Frame data = make_data_for(FrameType::kData, packet_copy);
    data.pair_delay = tau_sr;
    transmit(data);
    const std::int64_t ack_slot =
        slot_index(sim_.now()) + data_slots(data_airtime(packet_copy.bits), tau_sr);
    const Time deadline = slot_start(ack_slot + 3);
    timeout_event_ = sim_.at(deadline, [this] {
      timeout_event_ = EventHandle{};
      if (state_ == State::kWaitAck) fail_and_backoff();
    });
  });
}

void EwMac::on_ack(const Frame& frame) {
  const Packet* packet = head();
  if (state_ != State::kWaitAck || packet == nullptr || frame.src != packet->dst ||
      frame.seq != packet->id) {
    return;
  }
  sim_.cancel(timeout_event_);
  timeout_event_ = EventHandle{};
  counters_.handshake_successes += 1;
  complete_head_packet(/*via_extra=*/false);
  set_state(State::kIdle);
  if (head() != nullptr) schedule_attempt(0);
}

// ---------------------------------------------------------------------
// Receiver side
// ---------------------------------------------------------------------

void EwMac::on_rts(const Frame& frame, const RxInfo& info) {
  // "Checking Scheduling" (Fig. 3): refuse when busy, quiet, or holding
  // an extra-communication grant.
  if (state_ != State::kIdle || quiet_now() || grant_.has_value()) return;
  if (candidates_.empty()) {
    decide_event_ = sim_.at(next_slot_boundary(sim_.now()), [this] {
      decide_event_ = EventHandle{};
      decide_cts();
    });
  }
  candidates_.push_back(Candidate{frame.src, frame.seq, frame.data_duration,
                                  info.measured_delay, frame.priority_rp});
}

void EwMac::decide_cts() {
  if (candidates_.empty()) return;
  // §3.1: pick the sender with the highest priority value.
  const auto winner_it =
      std::max_element(candidates_.begin(), candidates_.end(),
                       [](const Candidate& a, const Candidate& b) { return a.rp < b.rp; });
  const Candidate winner = *winner_it;
  candidates_.clear();
  if (state_ != State::kIdle || quiet_now() || modem_.transmitting() || grant_.has_value()) {
    return;
  }

  if (trace_ != nullptr) {
    TraceEvent boundary{};
    boundary.kind = TraceEventKind::kSlotBoundary;
    boundary.frame_type = FrameType::kCts;
    boundary.a = slot_index(sim_.now());
    trace_mac(boundary);
    TraceEvent win{};
    win.kind = TraceEventKind::kContentionWin;
    win.src = winner.src;
    win.dst = id();
    win.seq = winner.seq;
    win.value = winner.rp;
    trace_mac(win);
  }
  Frame cts = make_control(FrameType::kCts, winner.src);
  cts.seq = winner.seq;
  cts.data_duration = winner.data_duration;
  cts.pair_delay = winner.delay_to_src;
  transmit(cts);
  set_state(State::kWaitData);
  expected_data_from_ = winner.src;
  expected_seq_ = winner.seq;

  const std::int64_t occupancy = data_slots(winner.data_duration, winner.delay_to_src);
  const std::int64_t cts_slot = slot_index(sim_.now());
  neg_data_begin_ = slot_start(cts_slot + 1) + winner.delay_to_src;
  neg_ack_slot_start_ = slot_start(cts_slot + 1 + occupancy);
  const Time deadline = slot_start(slot_index(sim_.now()) + 1 + occupancy + 2);
  timeout_event_ = sim_.at(deadline, [this] {
    timeout_event_ = EventHandle{};
    if (state_ == State::kWaitData) {
      set_state(State::kIdle);
      expected_data_from_ = kNoNode;
      if (head() != nullptr) schedule_attempt(0);
    }
  });
}

void EwMac::on_data(const Frame& frame) {
  if (state_ != State::kWaitData || frame.src != expected_data_from_ ||
      frame.seq != expected_seq_) {
    return;
  }
  sim_.cancel(timeout_event_);
  timeout_event_ = EventHandle{};
  deliver_data(frame);
  set_state(State::kIdle);
  expected_data_from_ = kNoNode;

  // Eq. (5): the reception just ended, so the next boundary *is* the
  // ts(Data) + ceil((TD + tau)/|ts|) slot.
  Frame ack = make_control(FrameType::kAck, frame.src);
  ack.seq = frame.seq;
  sim_.at(next_slot_boundary(sim_.now()), [this, ack] {
    if (!modem_.transmitting()) transmit(ack);
  });
  if (head() != nullptr) schedule_attempt(1);
}

// ---------------------------------------------------------------------
// Extra communication: asking side (sensor i, §4.2)
// ---------------------------------------------------------------------

void EwMac::contention_lost(const Frame& negotiation, const RxInfo& info) {
  sim_.cancel(timeout_event_);
  timeout_event_ = EventHandle{};
  counters_.contention_losses += 1;
  if (trace_ != nullptr) {
    TraceEvent ev{};
    ev.kind = TraceEventKind::kContentionLoss;
    ev.frame_type = negotiation.type;
    ev.src = negotiation.src;
    if (const Packet* p = head()) {
      ev.dst = p->dst;
      ev.seq = p->id;
    }
    trace_mac(ev);
  }

  const Packet* packet = head();
  if (!config_.enable_extra || packet == nullptr) {
    fail_and_backoff();
    return;
  }

  // The extra plan's launch windows (EXR deadline, EXDATA slot) are all
  // derived from the negotiated exchange's pair delay. When the
  // negotiation carried none (fresh table after an outage), the real
  // schedule is whatever the participants measure in flight — betting on
  // the tau_max fallback risks landing the extra on a real window, so
  // fall back to ordinary backoff instead.
  if (negotiation.pair_delay.is_zero()) {
    fail_and_backoff();
    return;
  }

  const bool j_is_receiver = negotiation.type == FrameType::kCts;
  const Duration tau_ij = info.measured_delay;
  const Duration tau_jk =
      negotiation.pair_delay.is_zero() ? config_.tau_max : negotiation.pair_delay;
  const Duration d_neg = negotiation.data_duration;
  const std::int64_t heard_slot = slot_index(info.arrival_begin);

  ExtraPlan plan{};
  plan.j = negotiation.src;
  plan.j_is_receiver = j_is_receiver;
  plan.seq = packet->id;
  plan.tau_ij = tau_ij;
  plan.tau_jk = tau_jk;
  plan.neg_data_duration = d_neg;

  const Duration my_data_dur = data_airtime(packet->bits);
  Time exr_time{};
  bool feasible = false;

  if (j_is_receiver) {
    // Fig. 4: j sent CTS(j,k) in slot c; Data(k,j) leaves at S(c+1) and
    // reaches j at S(c+1)+tau_jk. EXR goes out "in the next time slot of
    // CTS at the beginning after beta" and must be fully received at j
    // before the data's leading edge (period V).
    const std::int64_t c = heard_slot;
    plan.ack_slot_start = slot_start(c + 1 + data_slots(d_neg, tau_jk));
    const Duration bound = tau_jk - tau_ij - omega() - config_.guard - config_.guard_slack;
    if (!bound.is_negative()) {
      const Time base = slot_start(c + 1);
      // Try a few launch offsets within [0, bound] until the arrival is
      // clear at every schedulable neighbor.
      for (int step = 0; step < 4 && !feasible; ++step) {
        const Duration beta = bound * step / 4;
        const Time candidate = base + beta;
        if (candidate <= sim_.now()) continue;
        if (clear_at_neighbors(candidate, omega(), plan.j)) {
          exr_time = candidate;
          feasible = true;
        }
      }
    }
  } else {
    // j sent RTS(j,k) in slot t: j idles from the end of its RTS until
    // CTS(k,j) arrives at S(t+1)+tau_jk (period III). EXR can leave
    // immediately.
    const std::int64_t t = heard_slot;
    plan.ack_slot_start = slot_start(t + 2 + data_slots(d_neg, tau_jk));
    const Time candidate = sim_.now() + config_.guard;
    const Time arrival_deadline =
        slot_start(t + 1) + tau_jk - config_.guard - config_.guard_slack;
    if (candidate + tau_ij + omega() <= arrival_deadline &&
        clear_at_neighbors(candidate, omega(), plan.j)) {
      exr_time = candidate;
      feasible = true;
    }
  }

  if (!feasible) {
    fail_and_backoff();
    return;
  }

  extra_ = plan;
  set_state(State::kAskingExtra);
  counters_.extra_attempts += 1;

  const std::uint64_t seq = plan.seq;
  const NodeId j = plan.j;
  const Duration my_dur = my_data_dur;
  sim_.at(exr_time, [this, seq, j, my_dur] {
    if (state_ != State::kAskingExtra || !extra_ || extra_->seq != seq) return;
    if (modem_.transmitting()) {
      abandon_extra();
      return;
    }
    Frame exr = make_control(FrameType::kExr, j);
    exr.seq = seq;
    exr.data_duration = my_dur;
    if (const auto delay = neighbors_.delay_to(j)) exr.pair_delay = *delay;
    transmit(exr);

    // "If sensor i receives EXC after twice the propagation time" — allow
    // the round trip plus both control airtimes.
    const Time deadline =
        sim_.now() + extra_->tau_ij + extra_->tau_ij + omega() + omega() + 4 * config_.guard;
    timeout_event_ = sim_.at(deadline, [this] {
      timeout_event_ = EventHandle{};
      if (state_ == State::kAskingExtra) abandon_extra();
    });
  });
}

void EwMac::on_exc(const Frame& frame, const RxInfo&) {
  if (state_ != State::kAskingExtra || !extra_ || frame.src != extra_->j ||
      frame.seq != extra_->seq) {
    return;
  }
  sim_.cancel(timeout_event_);
  timeout_event_ = EventHandle{};

  const Packet* packet = head();
  if (packet == nullptr || packet->id != extra_->seq) {
    abandon_extra();
    return;
  }
  const Duration my_dur = data_airtime(packet->bits);

  // Eq. (6): launch EXDATA so its leading edge reaches j right after j's
  // negotiated exchange no longer needs the channel.
  // guard_slack hardens every deadline below against clock error: the
  // launch moves later by the slack and predicted windows are widened by
  // twice the slack, so any drift below it cannot create an overlap the
  // synchronized schedule would not have had (extra packets only shrink
  // their feasible windows, preserving the overlap theorem).
  Time tx_time{};
  if (extra_->j_is_receiver) {
    // Arrival begins as j finishes transmitting Ack(j,k).
    tx_time = extra_->ack_slot_start + omega() + config_.guard_slack - extra_->tau_ij;
  } else {
    // Arrival begins after j finishes *receiving* Ack(k,j).
    tx_time = extra_->ack_slot_start + extra_->tau_jk + omega() + config_.guard +
              config_.guard_slack - extra_->tau_ij;
  }

  // Shift past any predicted neighbor reception we would garble.
  const Duration pad = 2 * config_.guard_slack;
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& w : schedule_.windows()) {
      if (w.kind != BusyKind::kReceiving || w.neighbor == extra_->j) continue;
      const auto tau_in = neighbors_.delay_to(w.neighbor);
      if (!tau_in) continue;
      const TimeInterval wide{w.interval.begin - pad, w.interval.end + pad};
      const TimeInterval arrival{tx_time + *tau_in, tx_time + *tau_in + my_dur};
      if (arrival.overlaps(wide)) {
        tx_time = wide.end + config_.guard - *tau_in;
      }
    }
  }
  if (tx_time <= sim_.now() || tx_time > extra_->ack_slot_start + slot_length() + slot_length()) {
    abandon_extra();
    return;
  }

  if (trace_ != nullptr) {
    TraceEvent ev{};
    ev.kind = TraceEventKind::kExtraScheduled;
    ev.frame_type = FrameType::kExData;
    ev.dst = extra_->j;
    ev.seq = extra_->seq;
    ev.window_begin = tx_time;
    ev.window_end = tx_time + my_dur;
    trace_mac(ev);
  }
  set_state(State::kWaitExAck);
  const std::uint64_t seq = extra_->seq;
  const NodeId j = extra_->j;
  const Duration tau_ij = extra_->tau_ij;
  sim_.at(tx_time, [this, seq, j, my_dur, tau_ij] {
    if (state_ != State::kWaitExAck || !extra_ || extra_->seq != seq) return;
    if (modem_.transmitting() || head() == nullptr || head()->id != seq) {
      abandon_extra();
      return;
    }
    // Re-validate against the schedule book as it stands *now*: a
    // negotiation overheard after the launch was planned predicts
    // receptions the plan never saw, and launching into one garbles a
    // real window.
    if (!clear_at_neighbors(sim_.now(), my_dur, j)) {
      abandon_extra();
      return;
    }
    Frame exdata = make_data_for(FrameType::kExData, *head());
    transmit(exdata);
    const Time deadline =
        sim_.now() + my_dur + tau_ij + tau_ij + omega() + omega() + 4 * config_.guard;
    timeout_event_ = sim_.at(deadline, [this] {
      timeout_event_ = EventHandle{};
      if (state_ == State::kWaitExAck) abandon_extra();
    });
  });
}

void EwMac::on_exack(const Frame& frame) {
  const Packet* packet = head();
  if (state_ != State::kWaitExAck || !extra_ || packet == nullptr ||
      frame.seq != extra_->seq || frame.src != extra_->j) {
    return;
  }
  sim_.cancel(timeout_event_);
  timeout_event_ = EventHandle{};
  complete_head_packet(/*via_extra=*/true);
  extra_.reset();
  set_state(State::kIdle);
  if (head() != nullptr) schedule_attempt(0);
}

void EwMac::abandon_extra() {
  // Fig. 3: giving up the extra chance sends the sensor through Quiet
  // back to Idle; the packet re-enters normal contention with backoff.
  fail_and_backoff();
}

// ---------------------------------------------------------------------
// Extra communication: asked side (sensor j)
// ---------------------------------------------------------------------

void EwMac::on_exr(const Frame& frame, const RxInfo&) {
  if (grant_.has_value()) return;  // one extra exchange at a time

  Time expiry{};
  if (state_ == State::kWaitData) {
    // We are the receiver of a negotiated exchange: the EXC must be fully
    // radiated before our peer's data starts arriving (period V).
    if (sim_.now() + omega() + config_.guard + config_.guard_slack > neg_data_begin_) return;
    expiry = neg_ack_slot_start_ + slot_length() * 3;
  } else if (state_ == State::kWaitCts) {
    // We are a negotiating sender: period III lasts until the CTS we are
    // waiting for arrives.
    const Packet* packet = head();
    if (packet == nullptr) return;
    const auto tau = neighbors_.delay_to(packet->dst);
    if (!tau) return;
    const Time cts_arrival = slot_start(slot_index(sim_.now()) + 1) + *tau;
    if (sim_.now() + omega() + config_.guard + config_.guard_slack > cts_arrival) return;
    const std::int64_t ack_slot =
        slot_index(sim_.now()) + 2 + data_slots(data_airtime(packet->bits), *tau);
    expiry = slot_start(ack_slot) + *tau + omega() + slot_length() * 3;
  } else {
    return;
  }

  if (modem_.transmitting()) return;
  if (!clear_at_neighbors(sim_.now(), omega(), frame.src)) return;

  Frame exc = make_control(FrameType::kExc, frame.src);
  exc.seq = frame.seq;
  exc.data_duration = frame.data_duration;
  if (const auto delay = neighbors_.delay_to(frame.src)) exc.pair_delay = *delay;
  transmit(exc);

  grant_ = ExtraGrant{frame.src, frame.seq, expiry};
  if (trace_ != nullptr) {
    TraceEvent ev{};
    ev.kind = TraceEventKind::kExtraNegotiated;
    ev.frame_type = FrameType::kExc;
    ev.src = frame.src;
    ev.dst = id();
    ev.seq = frame.seq;
    ev.window_begin = sim_.now();
    ev.window_end = expiry;
    trace_mac(ev);
  }
  set_quiet_until(expiry);
  grant_expiry_event_ = sim_.at(expiry, [this] {
    grant_expiry_event_ = EventHandle{};
    grant_.reset();
  });
}

void EwMac::on_exdata(const Frame& frame) {
  if (!grant_ || frame.src != grant_->i || frame.seq != grant_->seq) return;
  deliver_data(frame);
  sim_.cancel(grant_expiry_event_);
  grant_expiry_event_ = EventHandle{};
  grant_.reset();

  if (modem_.transmitting()) return;  // asker times out and retries
  Frame exack = make_control(FrameType::kExAck, frame.src);
  exack.seq = frame.seq;
  transmit(exack);
}

// ---------------------------------------------------------------------
// Overhearing and schedule prediction
// ---------------------------------------------------------------------

void EwMac::predict_exchange(const Frame& frame, const RxInfo& info) {
  // A zero pair delay means the negotiation carried no measurement (fresh
  // table after an outage rejoin or first contact). The participants will
  // schedule the Ack from the delay they measure in flight — which an
  // overhearer cannot reproduce, so the prediction must cover every slot
  // the true delay could select. The old tau_max fallback predicted only
  // the *latest* candidate slot, leaving the real Ack window unprotected
  // whenever the true delay picked an earlier one (an extra scheduled
  // into the mispredicted gap then garbles a real reception).
  const bool tau_known = !frame.pair_delay.is_zero();
  const Duration tau_pair = tau_known ? frame.pair_delay : config_.tau_max;
  const Duration d = frame.data_duration;
  const std::int64_t heard_slot = slot_index(info.arrival_begin);

  if (frame.type == FrameType::kRts) {
    const NodeId j = frame.src;  // sender
    const NodeId k = frame.dst;  // receiver (if it grants)
    const Time cts_tx = slot_start(heard_slot + 1);
    const Time data_tx = slot_start(heard_slot + 2);
    schedule_.add(k, TimeInterval{cts_tx, cts_tx + omega()}, BusyKind::kTransmitting);
    schedule_.add(j, TimeInterval{data_tx, data_tx + d}, BusyKind::kTransmitting);
    if (tau_known) {
      const Time ack_tx = slot_start(heard_slot + 2 + data_slots(d, tau_pair));
      schedule_.add(j, TimeInterval{cts_tx + tau_pair, cts_tx + tau_pair + omega()},
                    BusyKind::kReceiving);
      schedule_.add(k, TimeInterval{data_tx + tau_pair, data_tx + tau_pair + d},
                    BusyKind::kReceiving);
      schedule_.add(k, TimeInterval{ack_tx, ack_tx + omega()}, BusyKind::kTransmitting);
      schedule_.add(j, TimeInterval{ack_tx + tau_pair, ack_tx + tau_pair + omega()},
                    BusyKind::kReceiving);
    } else {
      const Time first_ack = slot_start(heard_slot + 2 + data_slots(d, Duration::zero()));
      const Time last_ack = slot_start(heard_slot + 2 + data_slots(d, config_.tau_max));
      schedule_.add(j, TimeInterval{cts_tx, cts_tx + config_.tau_max + omega()},
                    BusyKind::kReceiving);
      schedule_.add(k, TimeInterval{data_tx, data_tx + config_.tau_max + d},
                    BusyKind::kReceiving);
      schedule_.add(k, TimeInterval{first_ack, last_ack + omega()},
                    BusyKind::kTransmitting);
      schedule_.add(j, TimeInterval{first_ack, last_ack + config_.tau_max + omega()},
                    BusyKind::kReceiving);
    }
  } else if (frame.type == FrameType::kCts) {
    const NodeId j = frame.src;  // receiver
    const NodeId k = frame.dst;  // sender
    const Time data_tx = slot_start(heard_slot + 1);
    schedule_.add(k, TimeInterval{data_tx, data_tx + d}, BusyKind::kTransmitting);
    if (tau_known) {
      const Time ack_tx = slot_start(heard_slot + 1 + data_slots(d, tau_pair));
      schedule_.add(j, TimeInterval{data_tx + tau_pair, data_tx + tau_pair + d},
                    BusyKind::kReceiving);
      schedule_.add(j, TimeInterval{ack_tx, ack_tx + omega()}, BusyKind::kTransmitting);
      schedule_.add(k, TimeInterval{ack_tx + tau_pair, ack_tx + tau_pair + omega()},
                    BusyKind::kReceiving);
    } else {
      const Time first_ack = slot_start(heard_slot + 1 + data_slots(d, Duration::zero()));
      const Time last_ack = slot_start(heard_slot + 1 + data_slots(d, config_.tau_max));
      schedule_.add(j, TimeInterval{data_tx, data_tx + config_.tau_max + d},
                    BusyKind::kReceiving);
      schedule_.add(j, TimeInterval{first_ack, last_ack + omega()},
                    BusyKind::kTransmitting);
      schedule_.add(k, TimeInterval{first_ack, last_ack + config_.tau_max + omega()},
                    BusyKind::kReceiving);
    }
  }
}

bool EwMac::clear_at_neighbors(Time tx_begin, Duration dur, NodeId exempt) const {
  // Widen every predicted window by twice the guard slack: both our clock
  // and the predicted node's clock may each be wrong by up to the slack.
  const Duration pad = 2 * config_.guard_slack;
  for (const auto& w : schedule_.windows()) {
    if (w.kind != BusyKind::kReceiving || w.neighbor == exempt) continue;
    const auto tau = neighbors_.delay_to(w.neighbor);
    if (!tau) continue;  // unknown delay => outside our reach in practice
    const TimeInterval wide{w.interval.begin - pad, w.interval.end + pad};
    const TimeInterval arrival{tx_begin + *tau, tx_begin + *tau + dur};
    if (arrival.overlaps(wide)) return false;
  }
  return true;
}

void EwMac::overhear(const Frame& frame, const RxInfo& info) {
  schedule_.prune(sim_.now());

  const Duration tau_pair = frame.pair_delay.is_zero() ? config_.tau_max : frame.pair_delay;
  const std::int64_t heard_slot = slot_index(info.arrival_begin);
  switch (frame.type) {
    case FrameType::kRts: {
      predict_exchange(frame, info);
      const std::int64_t occupancy = data_slots(frame.data_duration, tau_pair);
      set_quiet_until(slot_start(heard_slot + 3 + occupancy));
      // Contention loss (Fig. 3): we were waiting for a CTS from this very
      // node, which is itself negotiating as a sender.
      const Packet* packet = head();
      if (state_ == State::kWaitCts && packet != nullptr && frame.src == packet->dst) {
        contention_lost(frame, info);
      }
      break;
    }
    case FrameType::kCts: {
      predict_exchange(frame, info);
      const std::int64_t occupancy = data_slots(frame.data_duration, tau_pair);
      set_quiet_until(slot_start(heard_slot + 2 + occupancy));
      const Packet* packet = head();
      if (state_ == State::kWaitCts && packet != nullptr && frame.src == packet->dst) {
        contention_lost(frame, info);
      }
      break;
    }
    case FrameType::kData:
      set_quiet_until(info.arrival_end + slot_length() + slot_length());
      break;
    case FrameType::kExr:
    case FrameType::kExc:
      // Stay clear of the granted extra exchange (§4.2 closing note).
      set_quiet_until(info.arrival_end + slot_length() + frame.data_duration + slot_length());
      break;
    case FrameType::kExData:
      set_quiet_until(info.arrival_end + omega() + config_.tau_max);
      break;
    default:
      break;
  }
}

void EwMac::handle_frame(const Frame& frame, const RxInfo& info) {
  if (frame.dst != id()) {
    overhear(frame, info);
    return;
  }
  switch (frame.type) {
    case FrameType::kRts: on_rts(frame, info); break;
    case FrameType::kCts: on_cts(frame, info); break;
    case FrameType::kData: on_data(frame); break;
    case FrameType::kAck: on_ack(frame); break;
    case FrameType::kExr: on_exr(frame, info); break;
    case FrameType::kExc: on_exc(frame, info); break;
    case FrameType::kExData: on_exdata(frame); break;
    case FrameType::kExAck: on_exack(frame); break;
    default: break;
  }
}

}  // namespace aquamac

#pragma once
// EW-MAC — "Exploit Waiting" MAC, the paper's contribution (§4).
//
// On top of the slotted four-way handshake (RTS/CTS/DATA/ACK on slot
// boundaries, Eq.-5 Ack slots), EW-MAC adds the extra-communication
// phase: a sensor i that loses contention for its intended receiver j —
// detected by overhearing a negotiation packet RTS(j,k) or CTS(j,k) from
// j — may negotiate an EXR/EXC exchange inside j's idle waiting periods
// and then deliver EXDATA timed by Eq. (6) so that it reaches j exactly
// after j's negotiated exchange finished, never overlapping a negotiated
// packet at any neighbor whose schedule i can predict.
//
// State machine per Fig. 3: Idle, Quiet (via quiet_until), WaitingCTS,
// CheckingScheduling (the slot-boundary CTS decision), WaitingData,
// CheckingData (implicit in the DATA handler), WaitingAck, AskingExtra,
// AskedExtra.
//
// Ablation switches (MacConfig): enable_extra gates the whole extra
// phase; enable_priority gates the wait-time-weighted rp of §3.1.

#include <optional>
#include <vector>

#include "mac/handshake.hpp"
#include "mac/slotted_mac.hpp"

namespace aquamac {

class EwMac final : public SlottedMac {
 public:
  using SlottedMac::SlottedMac;

  [[nodiscard]] std::string_view name() const override { return "EW-MAC"; }
  void start() override;

  /// Exposed for tests: the node's current schedule predictions.
  [[nodiscard]] const ScheduleBook& schedule_book() const { return schedule_; }

  void save_state(StateWriter& writer) const override;
  void restore_state(StateReader& reader) override;

 protected:
  void handle_frame(const Frame& frame, const RxInfo& info) override;
  void handle_packet_enqueued() override;
  void handle_reset() override;

 private:
  enum class State {
    kIdle,
    kWaitCts,
    kWaitData,
    kWaitAck,
    kAskingExtra,  ///< EXR sent, awaiting EXC
    kWaitExAck,    ///< EXDATA scheduled/sent, awaiting EXACK
  };

  // --- sender side: negotiated path -----------------------------------
  void schedule_attempt(std::int64_t extra_slots);
  void attempt_rts();
  void fail_and_backoff();
  void on_cts(const Frame& frame, const RxInfo& info);
  void on_ack(const Frame& frame);

  // --- receiver side ----------------------------------------------------
  void on_rts(const Frame& frame, const RxInfo& info);
  void decide_cts();
  void on_data(const Frame& frame);

  // --- extra communication: asking side (sensor i) ---------------------
  /// Contention loss detected: j negotiated with k instead. Try the extra
  /// phase; falls back to backoff when infeasible.
  void contention_lost(const Frame& negotiation, const RxInfo& info);
  void on_exc(const Frame& frame, const RxInfo& info);
  void on_exack(const Frame& frame);
  void abandon_extra();

  // --- extra communication: asked side (sensor j) ----------------------
  void on_exr(const Frame& frame, const RxInfo& info);
  void on_exdata(const Frame& frame);

  // --- overhearing / schedule prediction --------------------------------
  void overhear(const Frame& frame, const RxInfo& info);
  /// Adds the predicted busy windows of the exchange announced by an
  /// overheard negotiation packet to the schedule book.
  void predict_exchange(const Frame& frame, const RxInfo& info);

  /// True when a transmission [tx_begin, tx_begin+dur) would, for every
  /// neighbor with known delay and predicted receive windows, arrive
  /// clear of those windows.
  [[nodiscard]] bool clear_at_neighbors(Time tx_begin, Duration dur, NodeId exempt) const;

  [[nodiscard]] double make_priority(const Packet& packet);

  /// All FSM transitions funnel through here so the trace sees every
  /// kMacState edge.
  void set_state(State next);

  State state_{State::kIdle};
  EventHandle attempt_event_{};
  EventHandle timeout_event_{};
  EventHandle decide_event_{};

  // Receiver-side RTS collection for the slot-boundary decision (§3.1:
  // pick the highest rp among the RTSs of the slot).
  struct Candidate {
    NodeId src;
    std::uint64_t seq;
    Duration data_duration;
    Duration delay_to_src;
    double rp;
  };
  std::vector<Candidate> candidates_;
  NodeId expected_data_from_{kNoNode};
  std::uint64_t expected_seq_{0};
  /// While in kWaitData: when the negotiated DATA starts arriving and the
  /// Eq.-5 Ack slot of our own exchange (used to bound granted extras).
  Time neg_data_begin_{};
  Time neg_ack_slot_start_{};

  // Asking-side extra state (sensor i).
  struct ExtraPlan {
    NodeId j{kNoNode};
    bool j_is_receiver{false};
    std::uint64_t seq{0};
    Duration tau_ij{};
    Duration tau_jk{};
    Duration neg_data_duration{};
    Time ack_slot_start{};  ///< slot start of the negotiated Ack (Eq. 5)
  };
  std::optional<ExtraPlan> extra_;

  // Asked-side extra state (sensor j).
  struct ExtraGrant {
    NodeId i{kNoNode};
    std::uint64_t seq{0};
    Time expires{};
  };
  std::optional<ExtraGrant> grant_;
  EventHandle grant_expiry_event_{};

  ScheduleBook schedule_;
};

}  // namespace aquamac

#pragma once
// CW-MAC: the slotted contention-window MAC of ns-3's UAN module, which
// the paper's authors state they modified to build their simulator (§5).
// No RTS/CTS: a queued DATA frame draws a contention counter, decrements
// it on idle slot boundaries, defers while neighbors are heard, and
// transmits when the counter expires; delivery is confirmed by an Ack.
// Included as the substrate sanity baseline.

#include "mac/slotted_mac.hpp"

namespace aquamac {

class CwMac final : public SlottedMac {
 public:
  using SlottedMac::SlottedMac;

  [[nodiscard]] std::string_view name() const override { return "CW-MAC"; }
  void start() override;

  void save_state(StateWriter& writer) const override;
  void restore_state(StateReader& reader) override;

 protected:
  void handle_frame(const Frame& frame, const RxInfo& info) override;
  void handle_packet_enqueued() override;

 private:
  void arm_countdown();
  void on_slot_boundary();
  void fire();
  void on_ack_timeout(std::uint64_t packet_id);

  std::int64_t counter_{-1};  ///< -1 = not contending
  bool awaiting_ack_{false};
  std::uint64_t awaited_packet_{0};
  EventHandle tick_event_{};
  EventHandle timeout_event_{};
};

}  // namespace aquamac

#include "mac/cwmac/cw_mac.hpp"

#include "sim/checkpoint.hpp"

namespace aquamac {

void CwMac::save_state(StateWriter& writer) const {
  SlottedMac::save_state(writer);
  writer.section("cw-mac", [this](StateWriter& w) {
    w.write_i64(counter_);
    w.write_bool(awaiting_ack_);
    w.write_u64(awaited_packet_);
    write_handle(w, tick_event_);
    write_handle(w, timeout_event_);
  });
}

void CwMac::restore_state(StateReader& reader) {
  SlottedMac::restore_state(reader);
  reader.section("cw-mac", [this](StateReader& r) {
    counter_ = r.read_i64();
    awaiting_ack_ = r.read_bool();
    awaited_packet_ = r.read_u64();
    read_handle(r, tick_event_);
    read_handle(r, timeout_event_);
  });
}

void CwMac::start() {}

void CwMac::handle_packet_enqueued() {
  if (!awaiting_ack_ && counter_ < 0) arm_countdown();
}

void CwMac::arm_countdown() {
  const Packet* packet = head();
  if (packet == nullptr) return;
  const std::uint64_t cw =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(config_.cw_min_slots)
                                  << packet->retries,
                              config_.cw_max_slots);
  counter_ = static_cast<std::int64_t>(rng_.below(cw + 1));
  if (tick_event_.is_null()) {
    tick_event_ = sim_.at(next_slot_boundary(sim_.now()), [this] {
      tick_event_ = EventHandle{};
      on_slot_boundary();
    });
  }
}

void CwMac::on_slot_boundary() {
  if (counter_ < 0 || awaiting_ack_) return;
  if (!quiet_now() && !modem_.transmitting()) {
    if (counter_ == 0) {
      fire();
      return;
    }
    --counter_;
  }
  tick_event_ = sim_.at(sim_.now() + slot_length(), [this] {
    tick_event_ = EventHandle{};
    on_slot_boundary();
  });
}

void CwMac::fire() {
  const Packet* packet = head();
  if (packet == nullptr) {
    counter_ = -1;
    return;
  }
  Frame data = make_data_for(FrameType::kData, *packet);
  if (packet->retries > 0) {
    counters_.retransmitted_frames += 1;
    counters_.retransmitted_bits += data.size_bits;
  }
  counters_.handshake_attempts += 1;
  transmit(data);
  counter_ = -1;
  awaiting_ack_ = true;
  awaited_packet_ = packet->id;

  const std::int64_t occupancy = data_slots(data_airtime(packet->bits), config_.tau_max);
  const Time deadline = next_slot_boundary(sim_.now()) + slot_length() * (occupancy + 2);
  const std::uint64_t packet_id = packet->id;
  timeout_event_ = sim_.at(deadline, [this, packet_id] {
    timeout_event_ = EventHandle{};
    on_ack_timeout(packet_id);
  });
}

void CwMac::on_ack_timeout(std::uint64_t packet_id) {
  if (!awaiting_ack_ || awaited_packet_ != packet_id) return;
  awaiting_ack_ = false;
  Packet* packet = head_mutable();
  if (packet == nullptr || packet->id != packet_id) return;
  packet->retries += 1;
  if (packet->retries > config_.max_retries) {
    drop_head_packet();
  }
  if (head() != nullptr) arm_countdown();
}

void CwMac::handle_frame(const Frame& frame, const RxInfo& info) {
  if (frame.dst != id()) {
    // Defer while the overheard transfer (and its Ack) completes.
    if (frame.type == FrameType::kData) {
      const Duration tail = config_.tau_max + omega() + config_.tau_max;
      set_quiet_until(info.arrival_end + tail);
    } else {
      set_quiet_until(info.arrival_end + config_.tau_max);
    }
    return;
  }

  switch (frame.type) {
    case FrameType::kData: {
      deliver_data(frame);
      Frame ack = make_control(FrameType::kAck, frame.src);
      ack.seq = frame.seq;
      sim_.at(next_slot_boundary(sim_.now()), [this, ack] {
        if (!modem_.transmitting()) transmit(ack);
      });
      break;
    }
    case FrameType::kAck: {
      if (awaiting_ack_ && frame.seq == awaited_packet_) {
        awaiting_ack_ = false;
        sim_.cancel(timeout_event_);
        timeout_event_ = EventHandle{};
        counters_.handshake_successes += 1;
        const Packet* packet = head();
        if (packet != nullptr && packet->id == frame.seq && packet->dst == frame.src) {
          complete_head_packet(/*via_extra=*/false);
        }
        if (head() != nullptr) arm_countdown();
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace aquamac

#pragma once
// ROPA — Reverse Opportunistic Packet Appending (Ng, Soh & Motani 2013),
// in the slotted adaptation the paper compares against (§5).
//
// The negotiated path is the standard slotted four-way handshake. The
// reuse mechanism is sender-side only: a neighbor A holding a packet
// *destined to* a sender S that has just radiated an RTS may slip an RTA
// (reverse request) into S's idle RTS->CTS waiting window. When S's own
// exchange completes, S grants the recorded appenders one by one and
// receives their data without their ever contending.
//
// Per the paper's accounting (§5.2-5.3), ROPA's control packets carry
// extra neighbor information, charged to overhead via the MacConfig
// control_info_* surcharge set by the factory.

#include <optional>
#include <vector>

#include "mac/slotted_mac.hpp"

namespace aquamac {

class Ropa final : public SlottedMac {
 public:
  using SlottedMac::SlottedMac;

  [[nodiscard]] std::string_view name() const override { return "ROPA"; }
  void start() override;

  void save_state(StateWriter& writer) const override;
  void restore_state(StateReader& reader) override;

 protected:
  void handle_frame(const Frame& frame, const RxInfo& info) override;
  void handle_packet_enqueued() override;

 private:
  enum class State {
    kIdle,
    kWaitCts,
    kWaitData,
    kWaitAck,
    kWaitGrant,    ///< appender: RTA sent, awaiting the sender's grant
    kAppendData,   ///< appender: granted, data scheduled/sent, awaiting ack
    kGranting,     ///< initiator: draining the recorded appender list
  };

  /// Max appenders served per exchange (keeps the append train bounded).
  static constexpr std::size_t kMaxAppenders = 2;

  // --- negotiated path ---------------------------------------------------
  void schedule_attempt(std::int64_t extra_slots);
  void attempt_rts();
  void fail_and_backoff();
  void decide_cts();
  void send_ack(NodeId dst, std::uint64_t seq, FrameType type);

  // --- appending: appender side (A) -------------------------------------
  void maybe_send_rta(const Frame& rts, const RxInfo& info);
  void on_grant(const Frame& frame);

  // --- appending: initiator side (S) -------------------------------------
  void begin_grant_phase();
  void grant_next();

  void overhear(const Frame& frame, const RxInfo& info);

  State state_{State::kIdle};
  EventHandle attempt_event_{};
  EventHandle timeout_event_{};
  EventHandle decide_event_{};

  struct PendingRts {
    NodeId src;
    std::uint64_t seq;
    Duration data_duration;
    Duration delay_to_src;
  };
  std::optional<PendingRts> pending_rts_;
  NodeId expected_data_from_{kNoNode};
  std::uint64_t expected_seq_{0};
  bool expected_is_append_{false};

  /// Initiator: appenders recorded during the RTS->CTS wait.
  struct Appender {
    NodeId id;
    std::uint64_t seq;
    Duration data_duration;
  };
  std::vector<Appender> appenders_;
};

}  // namespace aquamac

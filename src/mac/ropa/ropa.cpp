#include "mac/ropa/ropa.hpp"

#include "sim/checkpoint.hpp"

namespace aquamac {

void Ropa::save_state(StateWriter& writer) const {
  SlottedMac::save_state(writer);
  writer.section("ropa", [this](StateWriter& w) {
    w.write_u32(static_cast<std::uint32_t>(state_));
    write_handle(w, attempt_event_);
    write_handle(w, timeout_event_);
    write_handle(w, decide_event_);
    w.write_bool(pending_rts_.has_value());
    if (pending_rts_) {
      w.write_u32(pending_rts_->src);
      w.write_u64(pending_rts_->seq);
      w.write_duration(pending_rts_->data_duration);
      w.write_duration(pending_rts_->delay_to_src);
    }
    w.write_u32(expected_data_from_);
    w.write_u64(expected_seq_);
    w.write_bool(expected_is_append_);
    w.write_u64(appenders_.size());
    for (const Appender& appender : appenders_) {
      w.write_u32(appender.id);
      w.write_u64(appender.seq);
      w.write_duration(appender.data_duration);
    }
  });
}

void Ropa::restore_state(StateReader& reader) {
  SlottedMac::restore_state(reader);
  reader.section("ropa", [this](StateReader& r) {
    state_ = static_cast<State>(r.read_u32());
    read_handle(r, attempt_event_);
    read_handle(r, timeout_event_);
    read_handle(r, decide_event_);
    pending_rts_.reset();
    if (r.read_bool()) {
      PendingRts rts{};
      rts.src = r.read_u32();
      rts.seq = r.read_u64();
      rts.data_duration = r.read_duration();
      rts.delay_to_src = r.read_duration();
      pending_rts_ = rts;
    }
    expected_data_from_ = r.read_u32();
    expected_seq_ = r.read_u64();
    expected_is_append_ = r.read_bool();
    appenders_.clear();
    const std::uint64_t count = r.read_u64();
    for (std::uint64_t k = 0; k < count; ++k) {
      Appender appender{};
      appender.id = r.read_u32();
      appender.seq = r.read_u64();
      appender.data_duration = r.read_duration();
      appenders_.push_back(appender);
    }
  });
}

void Ropa::start() {}

void Ropa::handle_packet_enqueued() {
  if (state_ == State::kIdle) schedule_attempt(0);
}

// ---------------------------------------------------------------------
// Negotiated four-way path
// ---------------------------------------------------------------------

void Ropa::schedule_attempt(std::int64_t extra_slots) {
  if (!attempt_event_.is_null()) return;
  const Time when = next_slot_boundary(sim_.now()) + slot_length() * extra_slots;
  attempt_event_ = sim_.at(when, [this] {
    attempt_event_ = EventHandle{};
    attempt_rts();
  });
}

void Ropa::attempt_rts() {
  const Packet* packet = head();
  if (packet == nullptr || state_ != State::kIdle) return;
  if (quiet_now() || modem_.transmitting() || pending_rts_.has_value()) {
    const Time resume = std::max(quiet_until(), sim_.now() + slot_length());
    attempt_event_ = sim_.at(next_slot_boundary(resume), [this] {
      attempt_event_ = EventHandle{};
      attempt_rts();
    });
    return;
  }

  appenders_.clear();
  Frame rts = make_control(FrameType::kRts, packet->dst);
  rts.seq = packet->id;
  rts.data_duration = data_airtime(packet->bits);
  if (const auto delay = neighbors_.delay_to(packet->dst)) rts.pair_delay = *delay;
  if (packet->retries > 0) {
    counters_.retransmitted_frames += 1;
    counters_.retransmitted_bits += rts.size_bits;
  }
  counters_.handshake_attempts += 1;
  transmit(rts);
  state_ = State::kWaitCts;

  const Time deadline = slot_start(slot_index(sim_.now()) + 3);
  timeout_event_ = sim_.at(deadline, [this] {
    timeout_event_ = EventHandle{};
    if (state_ == State::kWaitCts) {
      counters_.contention_losses += 1;
      fail_and_backoff();
    }
  });
}

void Ropa::fail_and_backoff() {
  state_ = State::kIdle;
  appenders_.clear();
  Packet* packet = head_mutable();
  if (packet == nullptr) return;
  packet->retries += 1;
  if (packet->retries > config_.max_retries) {
    drop_head_packet();
    if (head() != nullptr) schedule_attempt(0);
    return;
  }
  schedule_attempt(backoff_slots(packet->retries));
}

void Ropa::decide_cts() {
  if (!pending_rts_.has_value()) return;
  const PendingRts rts = *pending_rts_;
  pending_rts_.reset();
  if (state_ != State::kIdle || quiet_now() || modem_.transmitting()) return;

  Frame cts = make_control(FrameType::kCts, rts.src);
  cts.seq = rts.seq;
  cts.data_duration = rts.data_duration;
  cts.pair_delay = rts.delay_to_src;
  transmit(cts);
  state_ = State::kWaitData;
  expected_data_from_ = rts.src;
  expected_seq_ = rts.seq;
  expected_is_append_ = false;

  const std::int64_t occupancy = data_slots(rts.data_duration, rts.delay_to_src);
  const Time deadline = slot_start(slot_index(sim_.now()) + 1 + occupancy + 2);
  timeout_event_ = sim_.at(deadline, [this] {
    timeout_event_ = EventHandle{};
    if (state_ == State::kWaitData) {
      state_ = State::kIdle;
      expected_data_from_ = kNoNode;
      if (head() != nullptr) schedule_attempt(0);
    }
  });
}

void Ropa::send_ack(NodeId dst, std::uint64_t seq, FrameType type) {
  Frame ack = make_control(type, dst);
  ack.seq = seq;
  sim_.at(next_slot_boundary(sim_.now()), [this, ack] {
    if (!modem_.transmitting()) transmit(ack);
  });
}

// ---------------------------------------------------------------------
// Appender side (A): ride the sender's RTS->CTS wait with an RTA
// ---------------------------------------------------------------------

void Ropa::maybe_send_rta(const Frame& rts, const RxInfo& info) {
  const Packet* packet = head();
  if (state_ != State::kIdle || packet == nullptr) return;
  if (packet->dst != rts.src) return;        // our packet must target the sender
  if (rts.pair_delay.is_zero()) return;      // sender's wait length unknown

  // S idles from the end of its RTS until the CTS arrives: the RTA must
  // land entirely inside that window.
  const std::int64_t t = slot_index(info.arrival_begin);
  const Duration tau_as = info.measured_delay;
  const Time window_open = slot_start(t) + omega() + config_.guard;
  const Time window_close = slot_start(t + 1) + rts.pair_delay - config_.guard;
  Time lo = std::max(sim_.now() + config_.guard, window_open - tau_as);
  const Time hi = window_close - omega() - tau_as;
  if (hi <= lo) return;

  // Randomize the launch inside the feasible range so concurrent
  // appenders do not systematically collide at S.
  const double span = (hi - lo).to_seconds();
  const Time launch = lo + Duration::from_seconds(rng_.uniform01() * span);

  counters_.extra_attempts += 1;
  state_ = State::kWaitGrant;
  const std::uint64_t seq = packet->id;
  const NodeId s = rts.src;
  const Duration my_dur = data_airtime(packet->bits);
  sim_.at(launch, [this, seq, s, my_dur] {
    if (state_ != State::kWaitGrant) return;
    if (modem_.transmitting()) {
      state_ = State::kIdle;
      if (head() != nullptr) schedule_attempt(0);
      return;
    }
    Frame rta = make_control(FrameType::kRta, s);
    rta.seq = seq;
    rta.data_duration = my_dur;
    transmit(rta);
  });

  // The grant comes after S's whole exchange; allow it that long.
  const std::int64_t occupancy = data_slots(rts.data_duration, config_.tau_max);
  const Time deadline = slot_start(t + 3 + occupancy) + slot_length() * 3;
  timeout_event_ = sim_.at(deadline, [this] {
    timeout_event_ = EventHandle{};
    if (state_ == State::kWaitGrant) {
      state_ = State::kIdle;
      if (head() != nullptr) schedule_attempt(0);
    }
  });
}

void Ropa::on_grant(const Frame& frame) {
  const Packet* packet = head();
  if (state_ != State::kWaitGrant || packet == nullptr || frame.seq != packet->id) return;
  sim_.cancel(timeout_event_);
  timeout_event_ = EventHandle{};
  state_ = State::kAppendData;

  const Packet packet_copy = *packet;
  const std::uint32_t bits = packet->bits;
  sim_.at(next_slot_boundary(sim_.now()), [this, packet_copy, bits] {
    if (state_ != State::kAppendData || modem_.transmitting()) return;
    Frame data = make_data_for(FrameType::kExData, packet_copy);
    data.dst = packet_copy.dst;
    transmit(data);
    const Time deadline = sim_.now() + data_airtime(bits) + config_.tau_max +
                          config_.tau_max + omega() + slot_length();
    timeout_event_ = sim_.at(deadline, [this] {
      timeout_event_ = EventHandle{};
      if (state_ == State::kAppendData) {
        state_ = State::kIdle;
        if (head() != nullptr) schedule_attempt(0);
      }
    });
  });
}

// ---------------------------------------------------------------------
// Initiator side (S): drain the recorded appender list after our exchange
// ---------------------------------------------------------------------

void Ropa::begin_grant_phase() {
  state_ = State::kGranting;
  grant_next();
}

void Ropa::grant_next() {
  if (appenders_.empty()) {
    state_ = State::kIdle;
    if (head() != nullptr) schedule_attempt(0);
    return;
  }
  const Appender appender = appenders_.front();
  appenders_.erase(appenders_.begin());

  expected_data_from_ = appender.id;
  expected_seq_ = appender.seq;
  expected_is_append_ = true;

  sim_.at(next_slot_boundary(sim_.now()), [this, appender] {
    if (state_ != State::kGranting || modem_.transmitting()) {
      grant_next();
      return;
    }
    Frame grant = make_control(FrameType::kExc, appender.id);
    grant.seq = appender.seq;
    grant.data_duration = appender.data_duration;
    transmit(grant);
    const std::int64_t occupancy = data_slots(appender.data_duration, config_.tau_max);
    const Time deadline = slot_start(slot_index(sim_.now()) + 1 + occupancy + 2);
    timeout_event_ = sim_.at(deadline, [this] {
      timeout_event_ = EventHandle{};
      if (state_ == State::kGranting && expected_data_from_ != kNoNode) {
        expected_data_from_ = kNoNode;
        grant_next();
      }
    });
  });
}

// ---------------------------------------------------------------------
// Frame dispatch
// ---------------------------------------------------------------------

void Ropa::handle_frame(const Frame& frame, const RxInfo& info) {
  if (frame.dst != id() && frame.dst != kBroadcast) {
    overhear(frame, info);
    return;
  }

  switch (frame.type) {
    case FrameType::kRts: {
      if (state_ != State::kIdle || quiet_now()) break;
      if (!pending_rts_.has_value()) {
        pending_rts_ = PendingRts{frame.src, frame.seq, frame.data_duration,
                                  info.measured_delay};
        decide_event_ = sim_.at(next_slot_boundary(sim_.now()), [this] {
          decide_event_ = EventHandle{};
          decide_cts();
        });
      }
      break;
    }
    case FrameType::kRta: {
      if ((state_ == State::kWaitCts || state_ == State::kWaitAck) &&
          appenders_.size() < kMaxAppenders) {
        appenders_.push_back(Appender{frame.src, frame.seq, frame.data_duration});
      }
      break;
    }
    case FrameType::kCts: {
      const Packet* packet = head();
      if (state_ != State::kWaitCts || packet == nullptr || frame.src != packet->dst ||
          frame.seq != packet->id) {
        break;
      }
      sim_.cancel(timeout_event_);
      timeout_event_ = EventHandle{};
      state_ = State::kWaitAck;
      const Duration tau_sr = info.measured_delay;
      const Packet packet_copy = *packet;
      sim_.at(next_slot_boundary(sim_.now()), [this, packet_copy, tau_sr] {
        if (state_ != State::kWaitAck) return;
        if (modem_.transmitting()) {
          // Rare, but abandoning beats wedging in WaitAck with no timeout.
          fail_and_backoff();
          return;
        }
        Frame data = make_data_for(FrameType::kData, packet_copy);
        data.pair_delay = tau_sr;
        transmit(data);
        const std::int64_t ack_slot =
            slot_index(sim_.now()) + data_slots(data_airtime(packet_copy.bits), tau_sr);
        const Time deadline = slot_start(ack_slot + 3);
        timeout_event_ = sim_.at(deadline, [this] {
          timeout_event_ = EventHandle{};
          if (state_ == State::kWaitAck) fail_and_backoff();
        });
      });
      break;
    }
    case FrameType::kData: {
      if (state_ != State::kWaitData || expected_is_append_ ||
          frame.src != expected_data_from_ || frame.seq != expected_seq_) {
        break;
      }
      sim_.cancel(timeout_event_);
      timeout_event_ = EventHandle{};
      deliver_data(frame);
      state_ = State::kIdle;
      expected_data_from_ = kNoNode;
      send_ack(frame.src, frame.seq, FrameType::kAck);
      if (head() != nullptr) schedule_attempt(1);
      break;
    }
    case FrameType::kExData: {
      // Appended data arriving at the grant-phase initiator.
      if (state_ != State::kGranting || frame.src != expected_data_from_ ||
          frame.seq != expected_seq_) {
        break;
      }
      sim_.cancel(timeout_event_);
      timeout_event_ = EventHandle{};
      deliver_data(frame);
      expected_data_from_ = kNoNode;
      // (the appender counts the extra success when its ExAck arrives)
      if (!modem_.transmitting()) {
        Frame ack = make_control(FrameType::kExAck, frame.src);
        ack.seq = frame.seq;
        transmit(ack);
      }
      grant_next();
      break;
    }
    case FrameType::kExc: {
      on_grant(frame);
      break;
    }
    case FrameType::kAck: {
      const Packet* packet = head();
      if (state_ != State::kWaitAck || packet == nullptr || frame.src != packet->dst ||
          frame.seq != packet->id) {
        break;
      }
      sim_.cancel(timeout_event_);
      timeout_event_ = EventHandle{};
      counters_.handshake_successes += 1;
      complete_head_packet(/*via_extra=*/false);
      if (!appenders_.empty()) {
        begin_grant_phase();
      } else {
        state_ = State::kIdle;
        if (head() != nullptr) schedule_attempt(0);
      }
      break;
    }
    case FrameType::kExAck: {
      const Packet* packet = head();
      if (state_ != State::kAppendData || packet == nullptr ||
          frame.src != packet->dst || frame.seq != packet->id) {
        break;
      }
      sim_.cancel(timeout_event_);
      timeout_event_ = EventHandle{};
      complete_head_packet(/*via_extra=*/true);
      state_ = State::kIdle;
      if (head() != nullptr) schedule_attempt(0);
      break;
    }
    default:
      break;
  }
}

void Ropa::overhear(const Frame& frame, const RxInfo& info) {
  const std::int64_t heard_slot = slot_index(info.arrival_begin);
  switch (frame.type) {
    case FrameType::kRts: {
      const std::int64_t occupancy = data_slots(frame.data_duration, config_.tau_max);
      set_quiet_until(slot_start(heard_slot + 3 + occupancy));
      maybe_send_rta(frame, info);
      break;
    }
    case FrameType::kCts: {
      const std::int64_t occupancy = data_slots(frame.data_duration, config_.tau_max);
      set_quiet_until(slot_start(heard_slot + 2 + occupancy));
      break;
    }
    case FrameType::kData:
      set_quiet_until(info.arrival_end + slot_length() + slot_length());
      break;
    case FrameType::kExc: {
      // Someone else's append train: its data + ack follow.
      const std::int64_t occupancy = data_slots(frame.data_duration, config_.tau_max);
      set_quiet_until(slot_start(heard_slot + 2 + occupancy));
      break;
    }
    case FrameType::kExData:
      set_quiet_until(info.arrival_end + slot_length());
      break;
    default:
      break;
  }
}

}  // namespace aquamac

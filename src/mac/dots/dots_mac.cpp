#include "mac/dots/dots_mac.hpp"

#include "sim/checkpoint.hpp"

namespace aquamac {

void DotsMac::save_state(StateWriter& writer) const {
  SlottedMac::save_state(writer);
  writer.section("dots", [this](StateWriter& w) {
    w.write_bool(awaiting_ack_);
    w.write_u64(awaited_packet_);
    write_handle(w, attempt_event_);
    write_handle(w, timeout_event_);
    schedule_.save_state(w);
  });
}

void DotsMac::restore_state(StateReader& reader) {
  SlottedMac::restore_state(reader);
  reader.section("dots", [this](StateReader& r) {
    awaiting_ack_ = r.read_bool();
    awaited_packet_ = r.read_u64();
    read_handle(r, attempt_event_);
    read_handle(r, timeout_event_);
    schedule_.restore_state(r);
  });
}

void DotsMac::start() {}

void DotsMac::handle_packet_enqueued() {
  if (!awaiting_ack_) schedule_attempt(config_.guard);
}

void DotsMac::schedule_attempt(Duration delay) {
  if (!attempt_event_.is_null()) return;
  attempt_event_ = sim_.in(delay, [this] {
    attempt_event_ = EventHandle{};
    attempt();
  });
}

Time DotsMac::pick_launch(Time from, NodeId dst, Duration tau, Duration dur) const {
  Time launch = from;
  // Two passes over the book: pushing past one window can land inside
  // another; a second sweep settles all realistic cases.
  for (int pass = 0; pass < 2; ++pass) {
    // The destination must be able to *hear* us: its own reception
    // windows conflict like everyone else's, and so do its predicted
    // transmit windows (it cannot receive while transmitting).
    for (const auto& w : schedule_.windows()) {
      const auto tau_n =
          w.neighbor == dst ? std::optional<Duration>{tau} : neighbors_.delay_to(w.neighbor);
      if (!tau_n) continue;
      if (w.neighbor != dst && w.kind == BusyKind::kTransmitting) continue;
      const TimeInterval arrival{launch + *tau_n, launch + *tau_n + dur};
      if (arrival.overlaps(w.interval)) {
        launch = w.interval.end + config_.guard - *tau_n;
      }
    }
  }
  return launch;
}

void DotsMac::attempt() {
  const Packet* packet = head();
  if (packet == nullptr || awaiting_ack_) return;
  if (modem_.transmitting()) {
    schedule_attempt(omega());
    return;
  }
  const auto tau = neighbors_.delay_to(packet->dst);
  if (!tau) {
    // Destination unknown: probe blindly; the Hello-refresh from any
    // reply repairs the table. Retries are bounded as usual.
    Packet* mutable_packet = head_mutable();
    mutable_packet->retries += 1;
    if (mutable_packet->retries > config_.max_retries) {
      drop_head_packet();
      if (head() != nullptr) schedule_attempt(config_.guard);
      return;
    }
    broadcast_hello();
    schedule_attempt(2 * config_.tau_max);
    return;
  }

  const Duration dur = data_airtime(packet->bits);
  const Time launch = pick_launch(sim_.now() + config_.guard, packet->dst, *tau, dur);

  const std::uint64_t packet_id = packet->id;
  const std::uint32_t bits = packet->bits;
  const Duration tau_copy = *tau;
  attempt_event_ = sim_.at(launch, [this, packet_id, bits, tau_copy] {
    attempt_event_ = EventHandle{};
    const Packet* head_packet = head();
    if (head_packet == nullptr || head_packet->id != packet_id || awaiting_ack_) return;
    if (modem_.transmitting()) {
      schedule_attempt(omega());
      return;
    }
    Frame data = make_data_for(FrameType::kData, *head_packet);
    data.pair_delay = tau_copy;
    if (head_packet->retries > 0) {
      counters_.retransmitted_frames += 1;
      counters_.retransmitted_bits += data.size_bits;
    }
    counters_.handshake_attempts += 1;
    transmit(data);
    awaiting_ack_ = true;
    awaited_packet_ = packet_id;

    const Time deadline =
        sim_.now() + data_airtime(bits) + tau_copy + tau_copy + omega() + 8 * config_.guard;
    timeout_event_ = sim_.at(deadline, [this, packet_id] {
      timeout_event_ = EventHandle{};
      on_ack_timeout(packet_id);
    });
  });
}

void DotsMac::on_ack_timeout(std::uint64_t packet_id) {
  if (!awaiting_ack_ || awaited_packet_ != packet_id) return;
  awaiting_ack_ = false;
  Packet* packet = head_mutable();
  if (packet == nullptr || packet->id != packet_id) return;
  packet->retries += 1;
  if (packet->retries > config_.max_retries) {
    drop_head_packet();
    if (head() != nullptr) schedule_attempt(config_.guard);
    return;
  }
  // Continuous randomized backoff: uniform over a window that doubles
  // with the retry count (no slot grid to align to).
  const double window_s =
      static_cast<double>(backoff_slots(packet->retries)) * config_.tau_max.to_seconds();
  schedule_attempt(Duration::from_seconds(rng_.uniform(0.0, window_s)));
}

void DotsMac::overhear_data(const Frame& frame, const RxInfo& info) {
  schedule_.prune(sim_.now());
  if (frame.pair_delay.is_zero()) return;
  // The DATA header announces the pair delay; under network-wide sync the
  // timestamp gives the exact launch instant, so the whole exchange
  // (reception + immediate ack) is predictable.
  const Time tx_start = frame.sent_at;
  const Duration dur = info.arrival_end - info.arrival_begin;
  const Time rx_begin = tx_start + frame.pair_delay;
  const Time rx_end = rx_begin + dur;
  schedule_.add(frame.src, TimeInterval{tx_start, tx_start + dur}, BusyKind::kTransmitting);
  schedule_.add(frame.dst, TimeInterval{rx_begin, rx_end}, BusyKind::kReceiving);
  schedule_.add(frame.dst, TimeInterval{rx_end, rx_end + omega()}, BusyKind::kTransmitting);
  schedule_.add(frame.src,
                TimeInterval{rx_end + frame.pair_delay, rx_end + frame.pair_delay + omega()},
                BusyKind::kReceiving);
}

void DotsMac::handle_frame(const Frame& frame, const RxInfo& info) {
  if (frame.dst != id()) {
    if (frame.type == FrameType::kData) overhear_data(frame, info);
    return;
  }

  switch (frame.type) {
    case FrameType::kData: {
      deliver_data(frame);
      if (!modem_.transmitting()) {
        Frame ack = make_control(FrameType::kAck, frame.src);
        ack.seq = frame.seq;
        transmit(ack);
      }
      break;
    }
    case FrameType::kAck: {
      if (awaiting_ack_ && frame.seq == awaited_packet_) {
        awaiting_ack_ = false;
        sim_.cancel(timeout_event_);
        timeout_event_ = EventHandle{};
        counters_.handshake_successes += 1;
        const Packet* packet = head();
        if (packet != nullptr && packet->id == frame.seq && packet->dst == frame.src) {
          complete_head_packet(/*via_extra=*/false);
        }
        if (head() != nullptr) schedule_attempt(config_.guard);
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace aquamac

#pragma once
// DOTS-lite — a delay-aware opportunistic transmission protocol in the
// spirit of DOTS (Noh et al., ICNP 2010), which the paper's related-work
// section describes: "each sensor maintains the propagation delay time of
// its ... neighbors, which allows transmitting sensors to avoid
// collisions" with no slot structure at all.
//
// Implemented here as an *extension baseline* (not part of the paper's
// comparison set): senders launch DATA directly, but choose the launch
// instant so that the packet's arrival windows — at the destination and
// at every neighbor whose schedule is predictable from overheard DATA
// headers — avoid all known receptions. Acknowledgements are immediate.
// This exercises the temporal-reuse end of the design space the paper
// positions EW-MAC against.

#include "mac/handshake.hpp"
#include "mac/slotted_mac.hpp"

namespace aquamac {

class DotsMac final : public SlottedMac {
 public:
  using SlottedMac::SlottedMac;

  [[nodiscard]] std::string_view name() const override { return "DOTS"; }
  void start() override;

  void save_state(StateWriter& writer) const override;
  void restore_state(StateReader& reader) override;

  [[nodiscard]] const ScheduleBook& schedule_book() const { return schedule_; }

 protected:
  void handle_frame(const Frame& frame, const RxInfo& info) override;
  void handle_packet_enqueued() override;

 private:
  void schedule_attempt(Duration delay);
  void attempt();
  /// Earliest launch >= `from` whose arrival windows clear every known
  /// reception (destination exempt from the generic check: its window is
  /// what we are placing).
  [[nodiscard]] Time pick_launch(Time from, NodeId dst, Duration tau, Duration dur) const;
  void on_ack_timeout(std::uint64_t packet_id);
  void overhear_data(const Frame& frame, const RxInfo& info);

  bool awaiting_ack_{false};
  std::uint64_t awaited_packet_{0};
  EventHandle attempt_event_{};
  EventHandle timeout_event_{};
  ScheduleBook schedule_;
};

}  // namespace aquamac

#pragma once
// MAC protocol framework.
//
// A MacProtocol sits on one AcousticModem as its ModemListener, owns the
// node's upper-layer packet queue, and shares two behaviours the paper
// prescribes for *every* protocol in the comparison:
//   * every received or overheard packet refreshes the one-hop neighbor
//     propagation-delay table from its timestamp (§4.3), and
//   * all transmissions are recorded in per-class counters so throughput,
//     power, and overhead (Figs. 6-11) are derived from first principles.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "net/neighbor_table.hpp"
#include "phy/modem.hpp"
#include "sim/simulator.hpp"
#include "stats/counters.hpp"
#include "stats/trace.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace aquamac {

struct MacConfig {
  /// Size of RTS/CTS/Ack and the extra control packets (Table 2: 64 bits).
  std::uint32_t control_bits{64};
  /// Extra bits piggybacked on *negotiation* control packets by protocols
  /// that ship neighbor info in-band (CS-MAC two-hop announcements).
  std::uint32_t piggyback_bits{0};

  /// Maximum one-hop propagation delay; |ts| = omega + tau_max (§4.1).
  Duration tau_max{Duration::seconds(1)};

  /// Safety margin used when fitting extra packets into idle windows.
  Duration guard{Duration::milliseconds(2)};

  /// Retry policy: binary-exponential backoff in whole slots.
  std::uint32_t max_retries{6};
  std::uint32_t cw_min_slots{2};
  std::uint32_t cw_max_slots{32};

  /// Upper-layer queue bound; enqueues beyond it are dropped (counted).
  std::size_t queue_limit{256};

  /// Neighbor-information surcharge accounting (Fig. 10): every control
  /// frame is charged `control_info_base_bits` plus
  /// `control_info_per_entry_bits * min(one-hop degree, control_info_cap)`
  /// of piggybacked neighbor state. This models §5.3's cost of "carrying
  /// more information as piggyback" without inflating the Table-2 64-bit
  /// control airtime (set by the factory per protocol).
  std::uint32_t control_info_base_bits{0};
  std::uint32_t control_info_per_entry_bits{0};
  std::uint32_t control_info_cap{12};

  /// CS-MAC: number of (id, delay) entries semantically shipped on each
  /// negotiation packet, from which receivers build two-hop state.
  std::uint32_t two_hop_entries_shipped{0};

  // --- EW-MAC ablation switches (bench_ablation_ewmac) ----------------
  bool enable_extra{true};     ///< allow EXR/EXC/EXDATA/EXACK phase
  bool enable_priority{true};  ///< wait-time-weighted rp vs pure random

  // --- robustness / hardening (all defaults preserve legacy behavior) --
  /// Age out neighbor delays not refreshed within this window (the
  /// Network sweeps periodically); zero = trust entries forever.
  Duration neighbor_max_age{};
  /// Declare a neighbor dead after K consecutive silent handshakes (no
  /// CTS, no overheard negotiation); zero disables detection.
  std::uint32_t dead_neighbor_threshold{0};
  /// How long after declaring a neighbor dead to probe for reinstatement.
  Duration dead_probe_interval{Duration::seconds(30)};
  /// Extra safety margin under measured clock uncertainty: EW-MAC shrinks
  /// its extra-packet windows by this much so drift below the slack can
  /// never violate the overlap theorem. Zero = paper behavior.
  Duration guard_slack{};
  /// EWMA smoothing factor for one-hop delay measurements: each new
  /// sample moves the stored delay by `alpha * (sample - stored)`. 1.0
  /// (the default) overwrites with the raw sample — legacy behavior —
  /// while smaller values damp single noisy samples under mobility
  /// before DV costs or the relay backoff trust them (ROADMAP 2b).
  double neighbor_ewma{1.0};
};

/// End-to-end header carried across hops in multi-hop mode (§3.1/Fig. 1).
struct E2eHeader {
  NodeId origin{kNoNode};
  NodeId final_dst{kNoNode};
  std::uint8_t hop_count{0};
  std::uint64_t e2e_id{0};
  Time created_at{};
};

class MacProtocol : public ModemListener {
 public:
  MacProtocol(Simulator& sim, AcousticModem& modem, NeighborTable& neighbors,
              MacConfig config, Rng rng, Logger log);
  ~MacProtocol() override = default;

  MacProtocol(const MacProtocol&) = delete;
  MacProtocol& operator=(const MacProtocol&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called once after the network is wired, before traffic starts.
  virtual void start() {}

  /// Upper-layer send request: queue `payload_bits` for one-hop neighbor
  /// `dst`. The MAC delivers it (possibly via extra communication) or
  /// drops it after the retry budget. `e2e` is carried verbatim in the
  /// DATA frame for the relay layer.
  void enqueue_packet(NodeId dst, std::uint32_t payload_bits, E2eHeader e2e = E2eHeader());

  /// Installed by the relay layer: invoked once per *fresh* upper-layer
  /// delivery (duplicates are filtered before this fires).
  using DeliveryHandler = std::function<void(const Frame& frame)>;
  void set_delivery_handler(DeliveryHandler handler) { delivery_handler_ = std::move(handler); }

  /// Invoked when the head packet exhausts its retry budget (relay-layer
  /// loss accounting).
  using DropHandler = std::function<void(NodeId dst, const E2eHeader& e2e)>;
  void set_drop_handler(DropHandler handler) { drop_handler_ = std::move(handler); }

  /// Invoked when the head packet is acknowledged by its one-hop receiver
  /// (the relay reliability layer releases custody on it).
  using SentHandler = std::function<void(NodeId dst, const E2eHeader& e2e)>;
  void set_sent_handler(SentHandler handler) { sent_handler_ = std::move(handler); }

  // --- routing piggyback hooks (DvRouter, docs/routing.md) -------------
  /// Stamps protocol-independent piggyback fields (the DV route ad) onto
  /// every frame this MAC transmits, just before it hits the modem.
  using FrameStampHook = std::function<void(Frame& frame)>;
  void set_frame_stamp_hook(FrameStampHook hook) { stamp_hook_ = std::move(hook); }

  /// Observes every decodable received/overheard frame together with the
  /// clamped measured one-hop delay to its sender (route-ad ingestion).
  using FrameObserveHook = std::function<void(const Frame& frame, Duration measured_delay)>;
  void set_frame_observe_hook(FrameObserveHook hook) { observe_hook_ = std::move(hook); }

  /// Fired when dead-neighbor detection declares `neighbor` dead or aging
  /// evicts it — the routing layer invalidates routes through it.
  using NeighborDownHook = std::function<void(NodeId neighbor)>;
  void set_neighbor_down_hook(NeighborDownHook hook) { neighbor_down_hook_ = std::move(hook); }

  /// Deployment-time neighbor discovery (§4.3): broadcasts a Hello whose
  /// timestamp lets every receiver compute the propagation delay. No-op
  /// when the modem is mid-transmission.
  void broadcast_hello();

  /// Optional structured trace of this MAC's protocol-level events
  /// (state transitions, slot boundaries, contention outcomes, extra
  /// negotiation, neighbor-table updates).
  void set_trace(TraceSink* trace) { trace_ = trace; }

  /// Ages out neighbor entries older than `neighbor_max_age` (traced as
  /// kNeighborEvicted); the Network calls this on a periodic sweep. No-op
  /// when the knob is zero.
  void age_neighbors();

  /// Full MAC amnesia after an outage: wipes the neighbor table and peer
  /// health, invalidates pending probes, and lets the protocol cancel its
  /// in-flight handshake state (handle_reset). The node must re-learn
  /// delays via HELLO/piggyback before trusting anything again.
  void reset_mac_state();

  /// Whether dead-neighbor detection currently considers `node` dead.
  [[nodiscard]] bool neighbor_dead(NodeId node) const;

  /// Serializes this MAC's complete runtime state as checkpoint sections
  /// (docs/checkpoint.md): the base writes RNG words, packet queue,
  /// delivery/health bookkeeping and counters; every protocol override
  /// appends its FSM section after calling the base. Pending EventHandles
  /// are encoded only as null/armed bits — resume replays the prefix, so
  /// live handles are regenerated, and the bit is the invariant part.
  virtual void save_state(StateWriter& writer) const;

  /// Decodes and assigns the state written by save_state. The resume path
  /// calls this after replaying to the checkpoint time, then re-encodes
  /// and requires byte equality, so every field must round-trip exactly.
  virtual void restore_state(StateReader& reader);

  [[nodiscard]] NodeId id() const { return modem_.id(); }
  [[nodiscard]] MacCounters& counters() { return counters_; }
  [[nodiscard]] const MacCounters& counters() const { return counters_; }
  [[nodiscard]] const NeighborTable& neighbor_table() const { return neighbors_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  // --- ModemListener ---------------------------------------------------
  void on_frame_received(const Frame& frame, const RxInfo& info) final;
  void on_rx_failure(const Frame& frame, RxOutcome outcome, const RxInfo& info) final;
  void on_tx_done(const Frame& frame) final;

 protected:
  struct Packet {
    std::uint64_t id;
    NodeId dst;
    std::uint32_t bits;
    Time enqueued;
    std::uint32_t retries{0};
    E2eHeader e2e{};
  };

  /// Protocol hooks (called after common bookkeeping).
  virtual void handle_frame(const Frame& frame, const RxInfo& info) = 0;
  virtual void handle_rx_failure(const Frame& frame, RxOutcome outcome, const RxInfo& info) {
    (void)frame; (void)outcome; (void)info;
  }
  virtual void handle_tx_done(const Frame& frame) { (void)frame; }
  /// A packet joined the queue (queue may have been empty: kick the FSM).
  virtual void handle_packet_enqueued() {}
  /// reset_mac_state() hook: cancel timers, forget handshakes, restart.
  virtual void handle_reset() {}

  /// One consecutive silent handshake toward `dst` (no CTS and nothing
  /// overheard). At `dead_neighbor_threshold` the neighbor is declared
  /// dead (traced) and a reinstatement probe is scheduled. Any reception
  /// from the node clears the count (proof of life).
  void record_handshake_silence(NodeId dst);

  /// Builds a control frame of the protocol's control size (+piggyback
  /// for negotiation types).
  [[nodiscard]] Frame make_control(FrameType type, NodeId dst) const;
  /// Builds a data-class frame carrying `payload_bits`.
  [[nodiscard]] Frame make_data(FrameType type, NodeId dst, std::uint32_t payload_bits) const;
  /// Builds the DATA/EXDATA frame for a queued packet (dst, bits, seq and
  /// the end-to-end header all come from the packet).
  [[nodiscard]] Frame make_data_for(FrameType type, const Packet& packet) const;

  /// Counts and radiates. The modem stamps src and sent_at; the routing
  /// stamp hook (if any) fills the piggybacked route ad first.
  void transmit(Frame frame);

  /// Airtime of one control packet on this modem (omega, §3.1).
  [[nodiscard]] Duration omega() const { return modem_.airtime(control_frame_bits()); }
  [[nodiscard]] std::uint32_t control_frame_bits() const {
    return config_.control_bits + config_.piggyback_bits;
  }
  [[nodiscard]] Duration data_airtime(std::uint32_t bits) const { return modem_.airtime(bits); }

  /// Head-of-line packet, if any.
  [[nodiscard]] const Packet* head() const { return queue_.empty() ? nullptr : &queue_.front(); }
  Packet* head_mutable() { return queue_.empty() ? nullptr : &queue_.front(); }

  /// Marks the head packet acknowledged: latency + success accounting.
  void complete_head_packet(bool via_extra);
  /// Drops the head packet (retry budget exhausted).
  void drop_head_packet();

  /// Receiver-side delivery accounting for a DATA/EXDATA frame. Returns
  /// false (and counts a duplicate) when this (src, seq) was already
  /// delivered — a retransmission after a lost Ack. Callers still Ack.
  bool deliver_data(const Frame& frame);

  /// Checkpoint encoding of an EventHandle: only the armed (non-null) bit
  /// is invariant across shard counts, so that is all a snapshot carries.
  /// Replay re-arms the live handles before restore_state runs, so
  /// read_handle cross-checks the stored bit against the replayed handle
  /// and throws CheckpointError when the schedules diverged.
  static void write_handle(StateWriter& writer, const EventHandle& handle);
  static void read_handle(StateReader& reader, const EventHandle& handle);

  /// Records a MAC-level trace event, stamping `at` and `node`; the
  /// caller fills the kind-specific fields. No-op without a sink.
  void trace_mac(TraceEvent event) const;
  /// Convenience: a kMacState transition event (a = from, b = to).
  void trace_state(int from, int to) const;

  Simulator& sim_;
  AcousticModem& modem_;
  NeighborTable& neighbors_;
  MacConfig config_;  // lint: ckpt-skip(scenario-derived, rebuilt by resume)
  Rng rng_;
  Logger log_;  // lint: ckpt-skip(logging wiring, no simulation state)
  TraceSink* trace_{nullptr};
  MacCounters counters_;
  std::deque<Packet> queue_;
  std::uint64_t next_packet_id_{1};
  /// Highest sequence delivered per sender (senders emit in order).
  std::unordered_map<NodeId, std::uint64_t> delivered_seq_high_;
  DeliveryHandler delivery_handler_{};      // lint: ckpt-skip(callback wiring, rebound on construction)
  DropHandler drop_handler_{};              // lint: ckpt-skip(callback wiring, rebound on construction)
  SentHandler sent_handler_{};              // lint: ckpt-skip(callback wiring, rebound on construction)
  FrameStampHook stamp_hook_{};             // lint: ckpt-skip(callback wiring, rebound on construction)
  FrameObserveHook observe_hook_{};         // lint: ckpt-skip(callback wiring, rebound on construction)
  NeighborDownHook neighbor_down_hook_{};   // lint: ckpt-skip(callback wiring, rebound on construction)

 private:
  struct PeerHealth {
    std::uint32_t silent_failures{0};
    bool dead{false};
  };
  std::unordered_map<NodeId, PeerHealth> peer_health_;
  /// Bumped by reset_mac_state(); pending probe events compare it so a
  /// reset invalidates them without tracking handles.
  std::uint64_t health_generation_{0};
};

}  // namespace aquamac

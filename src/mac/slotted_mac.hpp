#pragma once
// Base class for the slotted protocols (EW-MAC, S-FAMA, CW-MAC, slotted
// ALOHA, and our slotted adaptations of ROPA / CS-MAC).
//
// Slot arithmetic follows §4.1: |ts| = omega + tau_max, slot boundaries
// at integer multiples of |ts| from time zero (network-wide sync is
// assumed, §3.1). Negotiated packets start exactly on slot boundaries;
// the extra packets of EW-MAC deliberately do not.

#include "mac/mac_protocol.hpp"

namespace aquamac {

class SlottedMac : public MacProtocol {
 public:
  using MacProtocol::MacProtocol;

  void save_state(StateWriter& writer) const override;
  void restore_state(StateReader& reader) override;

  /// |ts| = omega + tau_max (§4.1).
  [[nodiscard]] Duration slot_length() const { return omega() + config_.tau_max; }

  [[nodiscard]] std::int64_t slot_index(Time t) const {
    return (t - Time::zero()).divide_floor(slot_length());
  }
  [[nodiscard]] Time slot_start(std::int64_t index) const {
    return Time::zero() + slot_length() * index;
  }
  /// First slot boundary at or after `t`.
  [[nodiscard]] Time next_slot_boundary(Time t) const {
    const std::int64_t idx = slot_index(t);
    const Time start = slot_start(idx);
    return start == t ? start : slot_start(idx + 1);
  }
  /// Number of slots a DATA of `airtime` occupies from its sending slot
  /// until the Ack slot, per Eq. (5): ceil((TD + tau) / |ts|).
  [[nodiscard]] std::int64_t data_slots(Duration data_airtime, Duration tau) const {
    return (data_airtime + tau).divide_ceil(slot_length());
  }

 protected:
  /// Defers own initiations until `t` (Quiet state). Monotone max.
  void set_quiet_until(Time t) {
    if (t > quiet_until_) quiet_until_ = t;
  }
  [[nodiscard]] bool quiet_now() const { return sim_.now() < quiet_until_; }
  [[nodiscard]] Time quiet_until() const { return quiet_until_; }

  /// Binary-exponential backoff: uniform in [1, cw] whole slots, with cw
  /// = min(cw_min << retries, cw_max).
  [[nodiscard]] std::int64_t backoff_slots(std::uint32_t retries) {
    std::uint64_t cw = static_cast<std::uint64_t>(config_.cw_min_slots) << retries;
    cw = std::min<std::uint64_t>(cw, config_.cw_max_slots);
    return static_cast<std::int64_t>(rng_.below(cw)) + 1;
  }

 private:
  Time quiet_until_{Time::zero()};
};

}  // namespace aquamac

#include "mac/aloha/slotted_aloha.hpp"

#include "sim/checkpoint.hpp"

namespace aquamac {

void SlottedAloha::save_state(StateWriter& writer) const {
  SlottedMac::save_state(writer);
  writer.section("s-aloha", [this](StateWriter& w) {
    w.write_bool(awaiting_ack_);
    w.write_u64(awaited_packet_);
    write_handle(w, attempt_event_);
    write_handle(w, timeout_event_);
  });
}

void SlottedAloha::restore_state(StateReader& reader) {
  SlottedMac::restore_state(reader);
  reader.section("s-aloha", [this](StateReader& r) {
    awaiting_ack_ = r.read_bool();
    awaited_packet_ = r.read_u64();
    read_handle(r, attempt_event_);
    read_handle(r, timeout_event_);
  });
}

void SlottedAloha::start() {}

void SlottedAloha::handle_packet_enqueued() {
  if (!awaiting_ack_) schedule_attempt(0);
}

void SlottedAloha::schedule_attempt(std::int64_t extra_slots) {
  if (!attempt_event_.is_null()) return;  // one pending attempt at a time
  const Time when = next_slot_boundary(sim_.now()) + slot_length() * extra_slots;
  attempt_event_ = sim_.at(when, [this] {
    attempt_event_ = EventHandle{};
    attempt();
  });
}

void SlottedAloha::attempt() {
  const Packet* packet = head();
  if (packet == nullptr || awaiting_ack_) return;
  if (modem_.transmitting()) {
    schedule_attempt(1);
    return;
  }

  Frame data = make_data_for(FrameType::kData, *packet);
  if (packet->retries > 0) {
    counters_.retransmitted_frames += 1;
    counters_.retransmitted_bits += data.size_bits;
  }
  counters_.handshake_attempts += 1;
  transmit(data);

  awaiting_ack_ = true;
  awaited_packet_ = packet->id;
  // Ack is expected at the Eq.-5 slot; allow one extra slot of slack.
  const std::int64_t occupancy = data_slots(data_airtime(packet->bits), config_.tau_max);
  const Time deadline = next_slot_boundary(sim_.now()) + slot_length() * (occupancy + 2);
  const std::uint64_t packet_id = packet->id;
  timeout_event_ = sim_.at(deadline, [this, packet_id] {
    timeout_event_ = EventHandle{};
    on_ack_timeout(packet_id);
  });
}

void SlottedAloha::on_ack_timeout(std::uint64_t packet_id) {
  if (!awaiting_ack_ || awaited_packet_ != packet_id) return;
  awaiting_ack_ = false;
  Packet* packet = head_mutable();
  if (packet == nullptr || packet->id != packet_id) return;
  packet->retries += 1;
  if (packet->retries > config_.max_retries) {
    drop_head_packet();
    if (head() != nullptr) schedule_attempt(0);
    return;
  }
  schedule_attempt(backoff_slots(packet->retries));
}

void SlottedAloha::handle_frame(const Frame& frame, const RxInfo&) {
  if (frame.dst != id()) return;

  switch (frame.type) {
    case FrameType::kData: {
      deliver_data(frame);
      Frame ack = make_control(FrameType::kAck, frame.src);
      ack.seq = frame.seq;
      const Time when = next_slot_boundary(sim_.now());
      sim_.at(when, [this, ack] {
        if (!modem_.transmitting()) transmit(ack);
      });
      break;
    }
    case FrameType::kAck: {
      if (awaiting_ack_ && frame.seq == awaited_packet_) {
        awaiting_ack_ = false;
        sim_.cancel(timeout_event_);
        timeout_event_ = EventHandle{};
        counters_.handshake_successes += 1;
        const Packet* packet = head();
        if (packet != nullptr && packet->id == frame.seq && packet->dst == frame.src) {
          complete_head_packet(/*via_extra=*/false);
        }
        if (head() != nullptr) schedule_attempt(0);
      }
      break;
    }
    default:
      break;
  }
}

void SlottedAloha::handle_tx_done(const Frame&) {}

}  // namespace aquamac

#pragma once
// Slotted ALOHA with acknowledgements: the floor baseline. No carrier
// negotiation at all — a queued DATA frame is launched at a slot boundary
// and retried with binary-exponential backoff if no Ack returns. Included
// below the paper's comparison set as a sanity floor for the simulator
// (any handshake protocol must beat it once load grows).

#include "mac/slotted_mac.hpp"

namespace aquamac {

class SlottedAloha final : public SlottedMac {
 public:
  using SlottedMac::SlottedMac;

  [[nodiscard]] std::string_view name() const override { return "S-ALOHA"; }
  void start() override;

  void save_state(StateWriter& writer) const override;
  void restore_state(StateReader& reader) override;

 protected:
  void handle_frame(const Frame& frame, const RxInfo& info) override;
  void handle_tx_done(const Frame& frame) override;
  void handle_packet_enqueued() override;

 private:
  void schedule_attempt(std::int64_t extra_slots);
  void attempt();
  void on_ack_timeout(std::uint64_t packet_id);

  bool awaiting_ack_{false};
  std::uint64_t awaited_packet_{0};
  EventHandle attempt_event_{};
  EventHandle timeout_event_{};
};

}  // namespace aquamac

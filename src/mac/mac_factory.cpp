#include "mac/mac_factory.hpp"

#include <array>
#include <stdexcept>
#include <string>

#include "mac/aloha/slotted_aloha.hpp"
#include "mac/csmac/cs_mac.hpp"
#include "mac/cwmac/cw_mac.hpp"
#include "mac/dots/dots_mac.hpp"
#include "mac/ewmac/ew_mac.hpp"
#include "mac/macau/maca_u.hpp"
#include "mac/ropa/ropa.hpp"
#include "mac/sfama/s_fama.hpp"

namespace aquamac {

std::string_view to_string(MacKind kind) {
  switch (kind) {
    case MacKind::kEwMac: return "EW-MAC";
    case MacKind::kSFama: return "S-FAMA";
    case MacKind::kRopa: return "ROPA";
    case MacKind::kCsMac: return "CS-MAC";
    case MacKind::kCwMac: return "CW-MAC";
    case MacKind::kSlottedAloha: return "S-ALOHA";
    case MacKind::kDots: return "DOTS";
    case MacKind::kMacaU: return "MACA-U";
  }
  return "?";
}

MacKind mac_kind_from_string(std::string_view name) {
  for (MacKind kind : {MacKind::kEwMac, MacKind::kSFama, MacKind::kRopa, MacKind::kCsMac,
                       MacKind::kCwMac, MacKind::kSlottedAloha,
                       MacKind::kDots, MacKind::kMacaU}) {
    if (to_string(kind) == name) return kind;
  }
  throw std::invalid_argument("unknown MAC protocol: " + std::string{name});
}

const std::array<MacKind, 4>& paper_comparison_set() {
  static const std::array<MacKind, 4> kSet{MacKind::kSFama, MacKind::kRopa, MacKind::kCsMac,
                                           MacKind::kEwMac};
  return kSet;
}

std::unique_ptr<MacProtocol> make_mac(MacKind kind, Simulator& sim, AcousticModem& modem,
                                      NeighborTable& neighbors, MacConfig config, Rng rng,
                                      Logger log) {
  // Per-protocol neighbor-information cost models (§5.3, Fig. 10): the
  // airtime of every control packet stays at the Table-2 64 bits; the
  // information each protocol's control packets additionally carry is
  // charged to the overhead counters via control_info_*.
  switch (kind) {
    case MacKind::kEwMac:
      // Timestamp + pair delay + listening-time info on every control
      // packet (§4.3) — one-hop state only.
      if (config.control_info_base_bits == 0) config.control_info_base_bits = 128;
      return std::make_unique<EwMac>(sim, modem, neighbors, config, rng, std::move(log));
    case MacKind::kSFama:
      // The overhead baseline: no extra information at all.
      return std::make_unique<SFama>(sim, modem, neighbors, config, rng, std::move(log));
    case MacKind::kRopa:
      // Timestamp + pair delay, as EW-MAC, but ROPA negotiates less
      // often overall ("less chance for communication", §5.3).
      if (config.control_info_base_bits == 0) config.control_info_base_bits = 48;
      return std::make_unique<Ropa>(sim, modem, neighbors, config, rng, std::move(log));
    case MacKind::kCsMac:
      // Two-hop announcements ride physically on every negotiation packet
      // (two 48-bit entries lengthen the control frame and its slot), and
      // a density-scaled surcharge accounts for the rest of the shipped
      // state (§5.3).
      if (config.piggyback_bits == 0) config.piggyback_bits = 96;
      if (config.control_info_base_bits == 0) {
        config.control_info_base_bits = 24;
        config.control_info_per_entry_bits = 24;
      }
      if (config.two_hop_entries_shipped == 0) config.two_hop_entries_shipped = 4;
      return std::make_unique<CsMac>(sim, modem, neighbors, config, rng, std::move(log));
    case MacKind::kCwMac:
      return std::make_unique<CwMac>(sim, modem, neighbors, config, rng, std::move(log));
    case MacKind::kSlottedAloha:
      return std::make_unique<SlottedAloha>(sim, modem, neighbors, config, rng, std::move(log));
    case MacKind::kDots:
      return std::make_unique<DotsMac>(sim, modem, neighbors, config, rng, std::move(log));
    case MacKind::kMacaU:
      return std::make_unique<MacaU>(sim, modem, neighbors, config, rng, std::move(log));
  }
  throw std::invalid_argument("unhandled MacKind");
}

}  // namespace aquamac

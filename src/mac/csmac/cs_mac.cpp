#include "mac/csmac/cs_mac.hpp"

#include <memory>

#include "sim/checkpoint.hpp"

namespace aquamac {

void CsMac::save_state(StateWriter& writer) const {
  SlottedMac::save_state(writer);
  writer.section("cs-mac", [this](StateWriter& w) {
    w.write_u32(static_cast<std::uint32_t>(state_));
    write_handle(w, attempt_event_);
    write_handle(w, timeout_event_);
    write_handle(w, decide_event_);
    w.write_bool(pending_rts_.has_value());
    if (pending_rts_) {
      w.write_u32(pending_rts_->src);
      w.write_u64(pending_rts_->seq);
      w.write_duration(pending_rts_->data_duration);
      w.write_duration(pending_rts_->delay_to_src);
    }
    w.write_u32(expected_data_from_);
    w.write_u64(expected_seq_);
  });
}

void CsMac::restore_state(StateReader& reader) {
  SlottedMac::restore_state(reader);
  reader.section("cs-mac", [this](StateReader& r) {
    state_ = static_cast<State>(r.read_u32());
    read_handle(r, attempt_event_);
    read_handle(r, timeout_event_);
    read_handle(r, decide_event_);
    pending_rts_.reset();
    if (r.read_bool()) {
      PendingRts rts{};
      rts.src = r.read_u32();
      rts.seq = r.read_u64();
      rts.data_duration = r.read_duration();
      rts.delay_to_src = r.read_duration();
      pending_rts_ = rts;
    }
    expected_data_from_ = r.read_u32();
    expected_seq_ = r.read_u64();
  });
}

void CsMac::start() {}

void CsMac::handle_packet_enqueued() {
  if (state_ == State::kIdle) schedule_attempt(0);
}

// ---------------------------------------------------------------------
// Negotiated four-way path
// ---------------------------------------------------------------------

void CsMac::schedule_attempt(std::int64_t extra_slots) {
  if (!attempt_event_.is_null()) return;
  const Time when = next_slot_boundary(sim_.now()) + slot_length() * extra_slots;
  attempt_event_ = sim_.at(when, [this] {
    attempt_event_ = EventHandle{};
    attempt_rts();
  });
}

void CsMac::attempt_rts() {
  const Packet* packet = head();
  if (packet == nullptr || state_ != State::kIdle) return;
  if (quiet_now() || modem_.transmitting() || pending_rts_.has_value()) {
    const Time resume = std::max(quiet_until(), sim_.now() + slot_length());
    attempt_event_ = sim_.at(next_slot_boundary(resume), [this] {
      attempt_event_ = EventHandle{};
      attempt_rts();
    });
    return;
  }

  Frame rts = make_control(FrameType::kRts, packet->dst);
  rts.seq = packet->id;
  rts.data_duration = data_airtime(packet->bits);
  if (const auto delay = neighbors_.delay_to(packet->dst)) rts.pair_delay = *delay;
  attach_neighbor_info(rts);
  if (packet->retries > 0) {
    counters_.retransmitted_frames += 1;
    counters_.retransmitted_bits += rts.size_bits;
  }
  counters_.handshake_attempts += 1;
  transmit(rts);
  state_ = State::kWaitCts;

  const Time deadline = slot_start(slot_index(sim_.now()) + 3);
  timeout_event_ = sim_.at(deadline, [this] {
    timeout_event_ = EventHandle{};
    if (state_ == State::kWaitCts) {
      counters_.contention_losses += 1;
      fail_and_backoff();
    }
  });
}

void CsMac::fail_and_backoff() {
  state_ = State::kIdle;
  Packet* packet = head_mutable();
  if (packet == nullptr) return;
  packet->retries += 1;
  if (packet->retries > config_.max_retries) {
    drop_head_packet();
    if (head() != nullptr) schedule_attempt(0);
    return;
  }
  schedule_attempt(backoff_slots(packet->retries));
}

void CsMac::decide_cts() {
  if (!pending_rts_.has_value()) return;
  const PendingRts rts = *pending_rts_;
  pending_rts_.reset();
  if (state_ != State::kIdle || quiet_now() || modem_.transmitting()) return;

  Frame cts = make_control(FrameType::kCts, rts.src);
  cts.seq = rts.seq;
  cts.data_duration = rts.data_duration;
  cts.pair_delay = rts.delay_to_src;
  attach_neighbor_info(cts);
  transmit(cts);
  state_ = State::kWaitData;
  expected_data_from_ = rts.src;
  expected_seq_ = rts.seq;

  const std::int64_t occupancy = data_slots(rts.data_duration, rts.delay_to_src);
  const Time deadline = slot_start(slot_index(sim_.now()) + 1 + occupancy + 2);
  timeout_event_ = sim_.at(deadline, [this] {
    timeout_event_ = EventHandle{};
    if (state_ == State::kWaitData) {
      state_ = State::kIdle;
      expected_data_from_ = kNoNode;
      if (head() != nullptr) schedule_attempt(0);
    }
  });
}

void CsMac::attach_neighbor_info(Frame& frame) const {
  if (config_.two_hop_entries_shipped == 0 || neighbors_.size() == 0) return;
  auto info = std::make_shared<std::vector<NeighborInfo>>();
  for (const auto& [nid, entry] : neighbors_.entries()) {
    if (info->size() >= config_.two_hop_entries_shipped) break;
    info->push_back(NeighborInfo{nid, entry.delay});
  }
  frame.neighbor_info = std::move(info);
}

// ---------------------------------------------------------------------
// Channel stealing
// ---------------------------------------------------------------------

void CsMac::maybe_steal(const Frame& negotiation, const RxInfo& info) {
  const Packet* packet = head();
  if (state_ != State::kIdle || packet == nullptr) return;
  const NodeId target = packet->dst;
  if (target == negotiation.src || target == negotiation.dst) return;  // pair is busy
  const auto tau_im = neighbors_.delay_to(target);
  if (!tau_im) return;

  const Duration my_dur = data_airtime(packet->bits);
  const Duration tau_pair =
      negotiation.pair_delay.is_zero() ? config_.tau_max : negotiation.pair_delay;

  // The paper's CS-MAC premise: the data airtime must fit inside the
  // pair's propagation gap.
  if (my_dur + config_.guard + config_.guard > tau_pair) return;

  // The paper's CS-MAC rule: "send data packets directly after
  // determining that the packet will arrive at the receiver before the
  // negotiated packet". The negotiated DATA leaves the pair's sender at
  // the next slot boundary; if we know our target's delay from that
  // sender (two-hop state), our arrival must clear the data's arrival at
  // the target. Unknown delays are optimistically ignored, and no other
  // neighbor is consulted — CS-MAC's documented recklessness (§5.1).
  const Time launch = sim_.now() + config_.guard;
  const std::int64_t c = slot_index(info.arrival_begin);
  const Time data_tx = slot_start(c + 1);
  const Time arrival_begin = launch + *tau_im;
  const Time arrival_end = arrival_begin + my_dur;
  const NodeId data_sender = negotiation.dst;
  if (const auto tau_km = neighbors_.two_hop_delay(data_sender, target)) {
    const Time data_at_target = data_tx + *tau_km;
    if (arrival_end + config_.guard > data_at_target) return;
  }

  counters_.extra_attempts += 1;
  state_ = State::kStealing;
  const Packet packet_copy = *packet;
  const std::uint32_t bits = packet->bits;
  sim_.at(launch, [this, packet_copy, bits, target] {
    if (state_ != State::kStealing || modem_.transmitting()) {
      if (state_ == State::kStealing) {
        state_ = State::kIdle;
        if (head() != nullptr) schedule_attempt(0);
      }
      return;
    }
    Frame data = make_data_for(FrameType::kExData, packet_copy);
    (void)target;
    transmit(data);
    const Time deadline = sim_.now() + data_airtime(bits) + config_.tau_max +
                          config_.tau_max + omega() + slot_length();
    timeout_event_ = sim_.at(deadline, [this] {
      timeout_event_ = EventHandle{};
      if (state_ == State::kStealing) {
        // The steal collided somewhere; fall back to normal contention.
        state_ = State::kIdle;
        Packet* head_packet = head_mutable();
        if (head_packet != nullptr) head_packet->retries += 1;
        if (head_packet != nullptr && head_packet->retries > config_.max_retries) {
          drop_head_packet();
        }
        if (head() != nullptr) schedule_attempt(0);
      }
    });
  });
}

// ---------------------------------------------------------------------
// Frame dispatch
// ---------------------------------------------------------------------

void CsMac::handle_frame(const Frame& frame, const RxInfo& info) {
  if (frame.dst != id() && frame.dst != kBroadcast) {
    overhear(frame, info);
    return;
  }

  switch (frame.type) {
    case FrameType::kRts: {
      if (state_ != State::kIdle || quiet_now()) break;
      if (!pending_rts_.has_value()) {
        pending_rts_ = PendingRts{frame.src, frame.seq, frame.data_duration,
                                  info.measured_delay};
        decide_event_ = sim_.at(next_slot_boundary(sim_.now()), [this] {
          decide_event_ = EventHandle{};
          decide_cts();
        });
      }
      break;
    }
    case FrameType::kCts: {
      const Packet* packet = head();
      if (state_ != State::kWaitCts || packet == nullptr || frame.src != packet->dst ||
          frame.seq != packet->id) {
        break;
      }
      sim_.cancel(timeout_event_);
      timeout_event_ = EventHandle{};
      state_ = State::kWaitAck;
      const Duration tau_sr = info.measured_delay;
      const Packet packet_copy = *packet;
      sim_.at(next_slot_boundary(sim_.now()), [this, packet_copy, tau_sr] {
        if (state_ != State::kWaitAck) return;
        if (modem_.transmitting()) {
          // Rare, but abandoning beats wedging in WaitAck with no timeout.
          fail_and_backoff();
          return;
        }
        Frame data = make_data_for(FrameType::kData, packet_copy);
        data.pair_delay = tau_sr;
        transmit(data);
        const std::int64_t ack_slot =
            slot_index(sim_.now()) + data_slots(data_airtime(packet_copy.bits), tau_sr);
        const Time deadline = slot_start(ack_slot + 3);
        timeout_event_ = sim_.at(deadline, [this] {
          timeout_event_ = EventHandle{};
          if (state_ == State::kWaitAck) fail_and_backoff();
        });
      });
      break;
    }
    case FrameType::kData: {
      if (state_ != State::kWaitData || frame.src != expected_data_from_ ||
          frame.seq != expected_seq_) {
        break;
      }
      sim_.cancel(timeout_event_);
      timeout_event_ = EventHandle{};
      deliver_data(frame);
      state_ = State::kIdle;
      expected_data_from_ = kNoNode;
      Frame ack = make_control(FrameType::kAck, frame.src);
      ack.seq = frame.seq;
      sim_.at(next_slot_boundary(sim_.now()), [this, ack] {
        if (!modem_.transmitting()) transmit(ack);
      });
      if (head() != nullptr) schedule_attempt(1);
      break;
    }
    case FrameType::kExData: {
      // A stolen-channel data packet addressed to us: accept whenever we
      // are not mid-exchange; ack immediately in the stolen gap.
      if (state_ != State::kIdle && state_ != State::kWaitCts) break;
      deliver_data(frame);
      if (!modem_.transmitting()) {
        Frame ack = make_control(FrameType::kExAck, frame.src);
        ack.seq = frame.seq;
        transmit(ack);
      }
      break;
    }
    case FrameType::kAck: {
      const Packet* packet = head();
      if (state_ != State::kWaitAck || packet == nullptr || frame.src != packet->dst ||
          frame.seq != packet->id) {
        break;
      }
      sim_.cancel(timeout_event_);
      timeout_event_ = EventHandle{};
      counters_.handshake_successes += 1;
      complete_head_packet(/*via_extra=*/false);
      state_ = State::kIdle;
      if (head() != nullptr) schedule_attempt(0);
      break;
    }
    case FrameType::kExAck: {
      const Packet* packet = head();
      if (state_ != State::kStealing || packet == nullptr || frame.src != packet->dst ||
          frame.seq != packet->id) {
        break;
      }
      sim_.cancel(timeout_event_);
      timeout_event_ = EventHandle{};
      complete_head_packet(/*via_extra=*/true);  // counts the extra success
      state_ = State::kIdle;
      if (head() != nullptr) schedule_attempt(0);
      break;
    }
    default:
      break;
  }
}

void CsMac::overhear(const Frame& frame, const RxInfo& info) {
  const std::int64_t heard_slot = slot_index(info.arrival_begin);
  switch (frame.type) {
    case FrameType::kRts: {
      const std::int64_t occupancy = data_slots(frame.data_duration, config_.tau_max);
      set_quiet_until(slot_start(heard_slot + 3 + occupancy));
      break;
    }
    case FrameType::kCts: {
      const std::int64_t occupancy = data_slots(frame.data_duration, config_.tau_max);
      set_quiet_until(slot_start(heard_slot + 2 + occupancy));
      maybe_steal(frame, info);
      break;
    }
    case FrameType::kData:
      set_quiet_until(info.arrival_end + slot_length() + slot_length());
      break;
    default:
      break;
  }
}

}  // namespace aquamac

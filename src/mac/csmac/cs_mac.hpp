#pragma once
// CS-MAC — Channel Stealing MAC (Chen et al., OCEANS 2011), slotted
// adaptation per the paper's §5.
//
// Negotiated path: the standard slotted four-way handshake. Reuse
// mechanism: a node that overhears a CTS(j,k) computes, from the pair
// delay it just learned and its (two-hop-maintained) neighbor knowledge,
// whether its own DATA packet fits inside the negotiated pair's waiting
// gap — and if so *sends the data directly, with no negotiation at all*.
// The steal requires the data airtime to be smaller than the pair
// propagation delay (the paper's stated CS-MAC assumption) and checks only
// the stolen pair's schedule, not other neighbors' — which is exactly why
// its throughput collapses under high offered load (Fig. 6) and why it
// loses its advantage in dense deployments (Fig. 7).
//
// Cost model per the paper (§5.3): CS-MAC ships two-hop neighbor info on
// its negotiation packets — modeled by attaching neighbor_info entries
// (two_hop_entries_shipped) that receivers fold into their two-hop
// tables, and charged to overhead via the control_info_* surcharge.

#include <optional>

#include "mac/slotted_mac.hpp"

namespace aquamac {

class CsMac final : public SlottedMac {
 public:
  using SlottedMac::SlottedMac;

  [[nodiscard]] std::string_view name() const override { return "CS-MAC"; }
  void start() override;

  void save_state(StateWriter& writer) const override;
  void restore_state(StateReader& reader) override;

 protected:
  void handle_frame(const Frame& frame, const RxInfo& info) override;
  void handle_packet_enqueued() override;

 private:
  enum class State {
    kIdle,
    kWaitCts,
    kWaitData,
    kWaitAck,
    kStealing,  ///< direct DATA radiated into a stolen gap, awaiting ack
  };

  // --- negotiated path -------------------------------------------------
  void schedule_attempt(std::int64_t extra_slots);
  void attempt_rts();
  void fail_and_backoff();
  void decide_cts();

  // --- channel stealing ---------------------------------------------------
  void maybe_steal(const Frame& cts, const RxInfo& info);

  /// Ships up to two_hop_entries_shipped (id, delay) pairs on a
  /// negotiation packet (the in-band two-hop maintenance of §5.3).
  void attach_neighbor_info(Frame& frame) const;

  void overhear(const Frame& frame, const RxInfo& info);

  State state_{State::kIdle};
  EventHandle attempt_event_{};
  EventHandle timeout_event_{};
  EventHandle decide_event_{};

  struct PendingRts {
    NodeId src;
    std::uint64_t seq;
    Duration data_duration;
    Duration delay_to_src;
  };
  std::optional<PendingRts> pending_rts_;
  NodeId expected_data_from_{kNoNode};
  std::uint64_t expected_seq_{0};
};

}  // namespace aquamac

#pragma once
// Factory mapping protocol names to implementations, applying the
// per-protocol cost-model defaults the paper prescribes (CS-MAC's
// two-hop piggyback on control packets, etc.).

#include <array>
#include <memory>
#include <string_view>

#include "mac/mac_protocol.hpp"

namespace aquamac {

enum class MacKind {
  kEwMac,
  kSFama,
  kRopa,
  kCsMac,
  kCwMac,
  kSlottedAloha,
  kDots,   ///< DOTS-lite extension baseline (not in the paper's set)
  kMacaU,  ///< MACA-U (paper ref [10]): unslotted RTS/CTS baseline
};

[[nodiscard]] std::string_view to_string(MacKind kind);

/// Parses "EW-MAC", "S-FAMA", "ROPA", "CS-MAC", "CW-MAC", "S-ALOHA", "DOTS", "MACA-U"
/// (case-sensitive); throws std::invalid_argument on unknown names.
[[nodiscard]] MacKind mac_kind_from_string(std::string_view name);

/// The four protocols of the paper's comparison, in presentation order.
[[nodiscard]] const std::array<MacKind, 4>& paper_comparison_set();

/// Instantiates `kind` on the given modem. `config` is adjusted with the
/// protocol's cost-model defaults (e.g. CS-MAC piggyback bits) unless the
/// caller already set them.
[[nodiscard]] std::unique_ptr<MacProtocol> make_mac(MacKind kind, Simulator& sim,
                                                    AcousticModem& modem,
                                                    NeighborTable& neighbors, MacConfig config,
                                                    Rng rng, Logger log);

}  // namespace aquamac

#include "mac/handshake.hpp"

#include "sim/checkpoint.hpp"

namespace aquamac {

void ScheduleBook::save_state(StateWriter& writer) const {
  writer.write_u64(windows_.size());
  for (const Window& window : windows_) {
    writer.write_u32(window.neighbor);
    writer.write_time(window.interval.begin);
    writer.write_time(window.interval.end);
    writer.write_u8(static_cast<std::uint8_t>(window.kind));
  }
}

void ScheduleBook::restore_state(StateReader& reader) {
  windows_.clear();
  const std::uint64_t count = reader.read_u64();
  for (std::uint64_t k = 0; k < count; ++k) {
    Window window{};
    window.neighbor = reader.read_u32();
    window.interval.begin = reader.read_time();
    window.interval.end = reader.read_time();
    window.kind = static_cast<BusyKind>(reader.read_u8());
    windows_.push_back(window);
  }
}

}  // namespace aquamac

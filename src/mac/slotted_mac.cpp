#include "mac/slotted_mac.hpp"

#include "sim/checkpoint.hpp"

namespace aquamac {

void SlottedMac::save_state(StateWriter& writer) const {
  MacProtocol::save_state(writer);
  writer.section("slotted", [this](StateWriter& w) { w.write_time(quiet_until_); });
}

void SlottedMac::restore_state(StateReader& reader) {
  MacProtocol::restore_state(reader);
  reader.section("slotted", [this](StateReader& r) { quiet_until_ = r.read_time(); });
}

}  // namespace aquamac

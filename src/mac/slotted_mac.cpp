// slotted_mac.hpp is header-only; this TU compiles it standalone under
// the project's warning set.
#include "mac/slotted_mac.hpp"

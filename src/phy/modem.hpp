#pragma once
// Half-duplex acoustic modem.
//
// The modem is the PHY endpoint: it turns frames into timed transmissions
// on the channel, keeps a ledger of arrival windows, and at the end of
// each window asks the reception model whether the frame survived
// (Eq. 1 semantics for the deterministic model). The MAC above it sees
// only three callbacks: a successfully received frame, a reception
// failure (collision/garble — content is NOT meaningful to protocols,
// only to stats), and transmit completion.

#include <cstdint>
#include <functional>
#include <vector>

#include "channel/reception.hpp"
#include "phy/energy.hpp"
#include "phy/frame.hpp"
#include "sim/simulator.hpp"
#include "stats/trace.hpp"
#include "util/phase_hook.hpp"
#include "util/time.hpp"
#include "util/vec3.hpp"

namespace aquamac {

class AcousticChannel;

struct ModemConfig {
  double bit_rate_bps{12'000.0};  ///< Table 2: 12 kbps bandwidth
  PowerProfile power{};
};

/// Metadata accompanying a delivered frame.
struct RxInfo {
  Time arrival_begin{};
  Time arrival_end{};
  double rx_level_db{0.0};
  /// arrival_begin - frame.sent_at: the one-hop propagation delay the
  /// receiver measures under the synchronization assumption (§4.3).
  Duration measured_delay{};
};

/// Implemented by the MAC layer sitting on the modem.
class ModemListener {
 public:
  virtual ~ModemListener() = default;
  /// A frame arrived intact.
  virtual void on_frame_received(const Frame& frame, const RxInfo& info) = 0;
  /// A frame arrived but was lost; protocols must not read its content
  /// (it is provided for statistics and tests only).
  virtual void on_rx_failure(const Frame& frame, RxOutcome outcome, const RxInfo& info) {
    (void)frame; (void)outcome; (void)info;
  }
  /// The modem finished radiating a frame this MAC submitted.
  virtual void on_tx_done(const Frame& frame) = 0;
};

class AcousticModem {
 public:
  AcousticModem(Simulator& sim, NodeId id, ModemConfig config,
                const ReceptionModel& reception, Rng rng);

  AcousticModem(const AcousticModem&) = delete;
  AcousticModem& operator=(const AcousticModem&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }

  void set_listener(ModemListener* listener) { listener_ = listener; }
  /// Optional structured trace of this modem's PHY events.
  void set_trace(TraceSink* trace) { trace_ = trace; }
  /// Optional per-phase instrumentation around finish_arrival (the MAC
  /// processing phase; serial profiling runs only — util/phase_hook.hpp).
  void set_phase_hook(PhaseHook* hook) { phase_hook_ = hook; }

  /// Hard node failure (battery death, flooding): a non-operational
  /// modem radiates nothing and hears nothing. Protocols above are not
  /// told — their retries and the neighbors' timeouts do the mourning.
  void set_operational(bool operational) { operational_ = operational; }
  [[nodiscard]] bool operational() const { return operational_; }

  /// Clock-synchronization error of this node (§3.1 assumes zero). The
  /// offset skews outgoing timestamps and the receiver-side arrival
  /// reading, so measured one-hop delays absorb the *difference* of the
  /// two nodes' offsets — exactly how real desynchronization enters.
  void set_clock_offset(Duration offset) { clock_offset_ = offset; }
  [[nodiscard]] Duration clock_offset() const { return clock_offset_; }
  /// Clock *drift*: the offset additionally grows at `ppm` parts per
  /// million of simulation time (a FaultPlan knob). With drift at zero
  /// the modem degenerates exactly to the static-offset behavior.
  void set_clock_drift_ppm(double ppm) { clock_drift_ppm_ = ppm; }
  [[nodiscard]] double clock_drift_ppm() const { return clock_drift_ppm_; }
  /// One random-walk jitter step: permanently shifts the static offset
  /// (the FaultPlan schedules these at its jitter interval).
  void add_clock_jitter(Duration delta) { clock_offset_ += delta; }
  /// Total clock error (offset + jitter so far + drift) read at sim time
  /// `t`; what this node's timestamps and delay readings are skewed by.
  [[nodiscard]] Duration clock_error_at(Time t) const {
    if (clock_drift_ppm_ == 0.0) return clock_offset_;
    return clock_offset_ + Duration::from_seconds(clock_drift_ppm_ * 1e-6 * t.to_seconds());
  }
  /// Moves the modem. Real moves bump the position epoch and notify the
  /// channel so its spatial index re-bins this modem before any later
  /// transmission queries it (defined in modem.cpp: needs AcousticChannel).
  void set_position(const Vec3& pos);
  [[nodiscard]] const Vec3& position() const { return position_; }
  /// Bumped every time the position actually changes (mobility updates).
  /// PropagationCache entries record the epochs they were computed at, so
  /// a moved endpoint invalidates its cached paths automatically.
  [[nodiscard]] std::uint64_t position_epoch() const { return position_epoch_; }

  /// Attached by AcousticChannel::attach; one channel per modem.
  void set_channel(AcousticChannel* channel) { channel_ = channel; }

  /// External impairment hook (FaultPlan burst loss / noise storms):
  /// consulted once per otherwise-successful arrival; returning true
  /// downgrades the reception to kChannelError.
  using ImpairmentFn = std::function<bool(NodeId receiver, Time arrival_begin)>;
  void set_impairment(ImpairmentFn impairment) { impairment_ = std::move(impairment); }

  /// Airtime of a frame of `bits` at this modem's rate.
  [[nodiscard]] Duration airtime(std::uint32_t bits) const {
    return Duration::from_seconds(static_cast<double>(bits) / config_.bit_rate_bps);
  }

  /// Radiates `frame` starting now. The modem stamps frame.sent_at.
  /// Precondition: not currently transmitting (MAC protocol bug if so).
  void transmit(Frame frame);

  [[nodiscard]] bool transmitting() const;
  /// End of the current transmission (valid only while transmitting()).
  [[nodiscard]] Time tx_end_time() const { return current_tx_end_; }

  [[nodiscard]] const EnergyMeter& energy() const { return energy_; }

  // --- channel-facing interface -------------------------------------
  /// Called by the channel when the leading edge of a frame reaches this
  /// modem; the modem schedules the window-end decision itself.
  void begin_arrival(const Frame& frame, double rx_level_db, TimeInterval window,
                     double noise_level_db, double detection_threshold_db);

  // --- statistics hooks ----------------------------------------------
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] std::uint64_t frames_received() const { return frames_received_; }
  [[nodiscard]] std::uint64_t rx_losses() const { return rx_losses_; }

  /// Checkpoint encoding of the modem's mutable runtime state: the
  /// arrival/tx ledgers, energy and clock accumulators, position (with
  /// epoch) and the PHY rng (docs/checkpoint.md). restore_state assigns
  /// the position directly without re-binning the channel — resume is
  /// replay-based, so the channel index is already consistent.
  void save_state(StateWriter& writer) const;
  void restore_state(StateReader& reader);

 private:
  struct Arrival {
    std::uint64_t id;
    Frame frame;
    double rx_level_db;
    TimeInterval window;
    double noise_level_db;
    double detection_threshold_db;
  };

  void finish_arrival(std::uint64_t arrival_id);
  void prune_ledgers();

  Simulator& sim_;
  NodeId id_;           // lint: ckpt-skip(config, fixed per node)
  ModemConfig config_;  // lint: ckpt-skip(scenario-derived, rebuilt by resume)
  const ReceptionModel& reception_;
  Rng rng_;

  void trace_event(TraceEventKind kind, const Frame& frame, RxOutcome outcome,
                   TimeInterval window) const;

  AcousticChannel* channel_{nullptr};
  ModemListener* listener_{nullptr};
  TraceSink* trace_{nullptr};
  PhaseHook* phase_hook_{nullptr};
  Vec3 position_{};
  std::uint64_t position_epoch_{1};  ///< 0 is reserved for "never cached"

  std::vector<Arrival> arrivals_;       ///< ledger of windows still able to overlap
  std::vector<TimeInterval> tx_windows_;
  std::uint64_t next_arrival_id_{1};
  Time current_tx_end_{Time::zero()};

  EnergyMeter energy_;
  Time last_rx_accounted_until_{Time::zero()};
  Duration clock_offset_{};
  double clock_drift_ppm_{0.0};
  ImpairmentFn impairment_{};  // lint: ckpt-skip(callback wiring, rebound on construction)
  bool operational_{true};

  std::uint64_t frames_sent_{0};
  std::uint64_t frames_received_{0};
  std::uint64_t rx_losses_{0};
};

}  // namespace aquamac

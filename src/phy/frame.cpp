#include "phy/frame.hpp"

#include <sstream>
#include <utility>

#include "sim/checkpoint.hpp"

namespace aquamac {

std::string_view to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kRts: return "RTS";
    case FrameType::kCts: return "CTS";
    case FrameType::kData: return "DATA";
    case FrameType::kAck: return "ACK";
    case FrameType::kExr: return "EXR";
    case FrameType::kExc: return "EXC";
    case FrameType::kExData: return "EXDATA";
    case FrameType::kExAck: return "EXACK";
    case FrameType::kRta: return "RTA";
    case FrameType::kMaint: return "MAINT";
  }
  return "?";
}

std::string Frame::to_string() const {
  std::ostringstream os;
  os << aquamac::to_string(type) << " " << src << "->";
  if (dst == kBroadcast) {
    os << "*";
  } else {
    os << dst;
  }
  os << " seq=" << seq << " bits=" << size_bits << " " << sent_at.to_string();
  return os.str();
}

void save_frame(StateWriter& writer, const Frame& frame) {
  writer.write_u8(static_cast<std::uint8_t>(frame.type));
  writer.write_u32(frame.src);
  writer.write_u32(frame.dst);
  writer.write_u32(frame.size_bits);
  writer.write_u64(frame.seq);
  writer.write_time(frame.sent_at);
  writer.write_f64(frame.priority_rp);
  writer.write_duration(frame.pair_delay);
  writer.write_duration(frame.data_duration);
  writer.write_u32(frame.data_bits);
  writer.write_u32(frame.origin);
  writer.write_u32(frame.final_dst);
  writer.write_u8(frame.hop_count);
  writer.write_u64(frame.e2e_id);
  writer.write_time(frame.created_at);
  writer.write_bool(frame.route_valid);
  writer.write_u32(frame.route_sink);
  writer.write_u32(frame.route_seq);
  writer.write_duration(frame.route_cost);
  writer.write_u32(frame.route_hops);
  writer.write_u32(frame.route_next_hop);
  writer.write_bool(frame.neighbor_info != nullptr);
  if (frame.neighbor_info != nullptr) {
    writer.write_u64(frame.neighbor_info->size());
    for (const NeighborInfo& info : *frame.neighbor_info) {
      writer.write_u32(info.id);
      writer.write_duration(info.delay);
    }
  }
}

Frame read_frame(StateReader& reader) {
  Frame frame{};
  frame.type = static_cast<FrameType>(reader.read_u8());
  frame.src = reader.read_u32();
  frame.dst = reader.read_u32();
  frame.size_bits = reader.read_u32();
  frame.seq = reader.read_u64();
  frame.sent_at = reader.read_time();
  frame.priority_rp = reader.read_f64();
  frame.pair_delay = reader.read_duration();
  frame.data_duration = reader.read_duration();
  frame.data_bits = reader.read_u32();
  frame.origin = reader.read_u32();
  frame.final_dst = reader.read_u32();
  frame.hop_count = reader.read_u8();
  frame.e2e_id = reader.read_u64();
  frame.created_at = reader.read_time();
  frame.route_valid = reader.read_bool();
  frame.route_sink = reader.read_u32();
  frame.route_seq = reader.read_u32();
  frame.route_cost = reader.read_duration();
  frame.route_hops = reader.read_u32();
  frame.route_next_hop = reader.read_u32();
  if (reader.read_bool()) {
    std::vector<NeighborInfo> entries;
    const std::uint64_t count = reader.read_u64();
    entries.reserve(count);
    for (std::uint64_t k = 0; k < count; ++k) {
      NeighborInfo info{};
      info.id = reader.read_u32();
      info.delay = reader.read_duration();
      entries.push_back(info);
    }
    frame.neighbor_info =
        std::make_shared<const std::vector<NeighborInfo>>(std::move(entries));
  }
  return frame;
}

}  // namespace aquamac

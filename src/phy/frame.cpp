#include "phy/frame.hpp"

#include <sstream>

namespace aquamac {

std::string_view to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kRts: return "RTS";
    case FrameType::kCts: return "CTS";
    case FrameType::kData: return "DATA";
    case FrameType::kAck: return "ACK";
    case FrameType::kExr: return "EXR";
    case FrameType::kExc: return "EXC";
    case FrameType::kExData: return "EXDATA";
    case FrameType::kExAck: return "EXACK";
    case FrameType::kRta: return "RTA";
    case FrameType::kMaint: return "MAINT";
  }
  return "?";
}

std::string Frame::to_string() const {
  std::ostringstream os;
  os << aquamac::to_string(type) << " " << src << "->";
  if (dst == kBroadcast) {
    os << "*";
  } else {
    os << dst;
  }
  os << " seq=" << seq << " bits=" << size_bits << " " << sent_at.to_string();
  return os.str();
}

}  // namespace aquamac

#include "phy/modem.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "channel/acoustic_channel.hpp"
#include "sim/checkpoint.hpp"

namespace aquamac {

AcousticModem::AcousticModem(Simulator& sim, NodeId id, ModemConfig config,
                             const ReceptionModel& reception, Rng rng)
    : sim_{sim}, id_{id}, config_{config}, reception_{reception}, rng_{rng} {}

bool AcousticModem::transmitting() const { return sim_.now() < current_tx_end_; }

void AcousticModem::set_position(const Vec3& pos) {
  if (pos == position_) return;
  position_ = pos;
  ++position_epoch_;
  if (channel_ != nullptr) channel_->on_position_changed(*this);
}

void AcousticModem::transmit(Frame frame) {
  if (channel_ == nullptr) throw std::logic_error("modem not attached to a channel");
  if (!operational_) return;  // dead nodes radiate nothing
  if (transmitting()) {
    throw std::logic_error("half-duplex violation: node " + std::to_string(id_) +
                           " transmit() while already transmitting " +
                           sim_.now().to_string());
  }
  if (frame.size_bits == 0) throw std::logic_error("transmit of zero-size frame");

  frame.src = id_;
  frame.sent_at = sim_.now() + clock_error_at(sim_.now());
  const Duration dur = airtime(frame.size_bits);
  const TimeInterval window{sim_.now(), sim_.now() + dur};
  tx_windows_.push_back(window);
  current_tx_end_ = window.end;
  energy_.add_tx_time(dur);
  ++frames_sent_;

  trace_event(TraceEventKind::kTxStart, frame, RxOutcome::kSuccess, window);
  channel_->start_transmission(*this, frame, dur);

  sim_.at(window.end, [this, frame] {
    if (listener_ != nullptr) listener_->on_tx_done(frame);
  });
}

void AcousticModem::trace_event(TraceEventKind kind, const Frame& frame, RxOutcome outcome,
                                TimeInterval window) const {
  if (trace_ == nullptr) return;
  TraceEvent event{};
  event.kind = kind;
  event.at = sim_.now();
  event.node = id_;
  event.frame_type = frame.type;
  event.src = frame.src;
  event.dst = frame.dst;
  event.seq = frame.seq;
  event.bits = frame.size_bits;
  event.outcome = outcome;
  event.window_begin = window.begin;
  event.window_end = window.end;
  trace_->record(event);
}

void AcousticModem::begin_arrival(const Frame& frame, double rx_level_db, TimeInterval window,
                                  double noise_level_db, double detection_threshold_db) {
  if (!operational_) return;  // dead nodes hear nothing
  prune_ledgers();
  const std::uint64_t arrival_id = next_arrival_id_++;
  arrivals_.push_back(Arrival{arrival_id, frame, rx_level_db, window, noise_level_db,
                              detection_threshold_db});
  sim_.at(window.end, [this, arrival_id] { finish_arrival(arrival_id); });
}

void AcousticModem::finish_arrival(std::uint64_t arrival_id) {
  const PhaseScope phase{phase_hook_, SimPhase::kMacProcessing};
  // A node that went down mid-window loses the arrival outright: the
  // ledger entry stays (it still interferes historically) but no decision
  // is made and the MAC hears nothing.
  if (!operational_) return;
  const auto it = std::find_if(arrivals_.begin(), arrivals_.end(),
                               [arrival_id](const Arrival& a) { return a.id == arrival_id; });
  assert(it != arrivals_.end() && "arrival pruned before its end event");
  const Arrival arrival = *it;  // copy: ledger may be consulted below

  ReceptionContext ctx{};
  ctx.rx_level_db = arrival.rx_level_db;
  ctx.noise_level_db = arrival.noise_level_db;
  ctx.bits = arrival.frame.size_bits;
  ctx.detection_threshold_db = arrival.detection_threshold_db;
  for (const Arrival& other : arrivals_) {
    if (other.id != arrival.id && other.window.overlaps(arrival.window)) {
      ctx.interferer_levels_db.push_back(other.rx_level_db);
    }
  }
  for (const TimeInterval& tx : tx_windows_) {
    if (tx.overlaps(arrival.window)) {
      ctx.receiver_transmitted = true;
      break;
    }
  }

  RxOutcome outcome = reception_.decide(ctx, rng_);
  if (outcome == RxOutcome::kSuccess && impairment_ &&
      impairment_(id_, arrival.window.begin)) {
    outcome = RxOutcome::kChannelError;
  }

  // Active-receive energy: the union of arrival windows, tracked with a
  // watermark so overlapping arrivals are not double-billed.
  const Time billed_from = std::max(arrival.window.begin, last_rx_accounted_until_);
  if (arrival.window.end > billed_from) {
    energy_.add_rx_time(arrival.window.end - billed_from);
    last_rx_accounted_until_ = arrival.window.end;
  }

  RxInfo info{};
  info.arrival_begin = arrival.window.begin;
  info.arrival_end = arrival.window.end;
  info.rx_level_db = arrival.rx_level_db;
  // The receiver reads its own (possibly offset + drifted) clock.
  info.measured_delay =
      (arrival.window.begin + clock_error_at(arrival.window.begin)) - arrival.frame.sent_at;

  if (outcome == RxOutcome::kSuccess) {
    ++frames_received_;
    trace_event(TraceEventKind::kRxOk, arrival.frame, outcome, arrival.window);
    if (listener_ != nullptr) listener_->on_frame_received(arrival.frame, info);
  } else if (outcome != RxOutcome::kBelowThreshold) {
    ++rx_losses_;
    trace_event(TraceEventKind::kRxLost, arrival.frame, outcome, arrival.window);
    if (listener_ != nullptr) listener_->on_rx_failure(arrival.frame, outcome, info);
  }
  // kBelowThreshold arrivals are interference-only: never seen by the MAC
  // and not counted as losses (the receiver was simply out of comm range).
}

void AcousticModem::prune_ledgers() {
  const Time now = sim_.now();
  // Strict '<' keeps windows ending exactly now: they can still overlap
  // arrivals judged at this same instant.
  std::erase_if(arrivals_, [now](const Arrival& a) { return a.window.end < now; });
  std::erase_if(tx_windows_, [now](const TimeInterval& w) { return w.end < now; });
}

void AcousticModem::save_state(StateWriter& writer) const {
  writer.section("modem", [this](StateWriter& w) {
    for (const std::uint64_t word : rng_.state()) w.write_u64(word);
    w.write_u64(arrivals_.size());
    for (const Arrival& arrival : arrivals_) {
      w.write_u64(arrival.id);
      save_frame(w, arrival.frame);
      w.write_f64(arrival.rx_level_db);
      w.write_time(arrival.window.begin);
      w.write_time(arrival.window.end);
      w.write_f64(arrival.noise_level_db);
      w.write_f64(arrival.detection_threshold_db);
    }
    w.write_u64(tx_windows_.size());
    for (const TimeInterval& window : tx_windows_) {
      w.write_time(window.begin);
      w.write_time(window.end);
    }
    w.write_u64(next_arrival_id_);
    w.write_time(current_tx_end_);
    w.write_duration(energy_.tx_time());
    w.write_duration(energy_.rx_time());
    w.write_time(last_rx_accounted_until_);
    w.write_duration(clock_offset_);
    w.write_f64(clock_drift_ppm_);
    w.write_bool(operational_);
    w.write_f64(position_.x);
    w.write_f64(position_.y);
    w.write_f64(position_.z);
    w.write_u64(position_epoch_);
    w.write_u64(frames_sent_);
    w.write_u64(frames_received_);
    w.write_u64(rx_losses_);
  });
}

void AcousticModem::restore_state(StateReader& reader) {
  reader.section("modem", [this](StateReader& r) {
    Rng::State words{};
    for (std::uint64_t& word : words) word = r.read_u64();
    rng_.set_state(words);
    arrivals_.clear();
    const std::uint64_t arrival_count = r.read_u64();
    for (std::uint64_t k = 0; k < arrival_count; ++k) {
      Arrival arrival{};
      arrival.id = r.read_u64();
      arrival.frame = read_frame(r);
      arrival.rx_level_db = r.read_f64();
      arrival.window.begin = r.read_time();
      arrival.window.end = r.read_time();
      arrival.noise_level_db = r.read_f64();
      arrival.detection_threshold_db = r.read_f64();
      arrivals_.push_back(arrival);
    }
    tx_windows_.clear();
    const std::uint64_t tx_count = r.read_u64();
    for (std::uint64_t k = 0; k < tx_count; ++k) {
      TimeInterval window{};
      window.begin = r.read_time();
      window.end = r.read_time();
      tx_windows_.push_back(window);
    }
    next_arrival_id_ = r.read_u64();
    current_tx_end_ = r.read_time();
    const Duration tx_time = r.read_duration();
    const Duration rx_time = r.read_duration();
    energy_.set_times(tx_time, rx_time);
    last_rx_accounted_until_ = r.read_time();
    clock_offset_ = r.read_duration();
    clock_drift_ppm_ = r.read_f64();
    operational_ = r.read_bool();
    position_.x = r.read_f64();
    position_.y = r.read_f64();
    position_.z = r.read_f64();
    position_epoch_ = r.read_u64();
    frames_sent_ = r.read_u64();
    frames_received_ = r.read_u64();
    rx_losses_ = r.read_u64();
  });
}

}  // namespace aquamac

#pragma once
// Energy accounting for an acoustic modem.
//
// The paper's Fig. 9 power metric counts "the power for waiting,
// transmitting, and receiving" (§5.2). We meter exactly those three
// states: transmit-active time, receive-active time (a packet is actually
// arriving), and the remainder as listening/idle ("the antenna remains in
// the receive state when it is not transmitting", §3.2). Default power
// draws are WHOI-micromodem-class constants (DESIGN.md §5 substitution).

#include <algorithm>

#include "util/time.hpp"

namespace aquamac {

struct PowerProfile {
  double tx_w{2.0};    ///< transmit electrical power, watts
  double rx_w{0.75};   ///< active-receive power, watts
  double idle_w{0.05}; ///< listening power, watts (commercial acoustic
                       ///< modems draw 10s-100s of mW while listening;
                       ///< this makes waiting a real cost, per §5.2)
};

class EnergyMeter {
 public:
  explicit EnergyMeter(PowerProfile profile = {}) : profile_{profile} {}

  void add_tx_time(Duration d) { tx_time_ += d; }
  void add_rx_time(Duration d) { rx_time_ += d; }

  [[nodiscard]] Duration tx_time() const { return tx_time_; }
  [[nodiscard]] Duration rx_time() const { return rx_time_; }

  /// Checkpoint restore: overwrite the accumulated active times.
  void set_times(Duration tx, Duration rx) {
    tx_time_ = tx;
    rx_time_ = rx;
  }

  /// Total energy in joules over an elapsed wall of simulated time; time
  /// not spent transmitting or actively receiving is billed at idle_w.
  [[nodiscard]] double energy_joules(Duration elapsed) const {
    const double tx_s = tx_time_.to_seconds();
    const double rx_s = rx_time_.to_seconds();
    const double idle_s = std::max(0.0, elapsed.to_seconds() - tx_s - rx_s);
    return profile_.tx_w * tx_s + profile_.rx_w * rx_s + profile_.idle_w * idle_s;
  }

  /// Mean power in watts over `elapsed`.
  [[nodiscard]] double mean_power_w(Duration elapsed) const {
    const double s = elapsed.to_seconds();
    return s > 0.0 ? energy_joules(elapsed) / s : 0.0;
  }

  [[nodiscard]] const PowerProfile& profile() const { return profile_; }

 private:
  PowerProfile profile_;
  Duration tx_time_{};
  Duration rx_time_{};
};

}  // namespace aquamac

// energy.hpp is header-only; this TU compiles it standalone under the
// project's warning set.
#include "phy/energy.hpp"

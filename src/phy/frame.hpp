#pragma once
// The over-the-air frame. One struct serves every protocol: the paper's
// §3.1 fixes all control packets (RTS, CTS, Ack, and the extra EXR/EXC
// variants) at the same size and requires a sending timestamp in every
// packet; negotiation packets additionally piggyback the pair propagation
// delay (§4.2, Fig. 4) so overhearers can schedule extra communication.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace aquamac {

/// Node identifier. Dense indices assigned by the Network at build time.
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xFFFFFFFFu;
inline constexpr NodeId kBroadcast = 0xFFFFFFFEu;

/// Encoded size of one piggybacked DV route advertisement (sink id 16,
/// sequence 32, quantized cost 32, hop count 8, next-hop id 16 bits):
/// charged to the overhead ledger per route-carrying frame (ROADMAP 2a).
inline constexpr std::uint32_t kRouteAdBits = 104;

enum class FrameType : std::uint8_t {
  kHello,   ///< deployment-time neighbor discovery (§4.3)
  kRts,
  kCts,
  kData,
  kAck,
  kExr,     ///< extra RTS (EW-MAC §4.2)
  kExc,     ///< extra CTS
  kExData,
  kExAck,
  kRta,     ///< ROPA's reverse "request to append"
  kMaint,   ///< periodic two-hop maintenance broadcast (ROPA / CS-MAC)
};

[[nodiscard]] std::string_view to_string(FrameType type);

/// One entry of a broadcast neighbor table (kMaint frames).
struct NeighborInfo {
  NodeId id{kNoNode};
  Duration delay{};
};

[[nodiscard]] constexpr bool is_control(FrameType type) {
  return type != FrameType::kData && type != FrameType::kExData;
}
[[nodiscard]] constexpr bool is_extra(FrameType type) {
  return type == FrameType::kExr || type == FrameType::kExc ||
         type == FrameType::kExData || type == FrameType::kExAck;
}

struct Frame {
  FrameType type{FrameType::kHello};
  NodeId src{kNoNode};
  NodeId dst{kNoNode};  ///< kBroadcast for Hello/Maint

  /// Airtime-determining size. Control frames use the scenario's control
  /// size (64 bits in Table 2); data frames the payload size.
  std::uint32_t size_bits{0};

  /// Handshake correlator: RTS/CTS/DATA/ACK of one exchange share it.
  std::uint64_t seq{0};

  /// Sending timestamp (appended to every packet, §4.3); receivers derive
  /// one-hop propagation delay as arrival time minus this.
  Time sent_at{};

  /// Random priority value carried by RTS (§3.1); receivers pick max.
  double priority_rp{0.0};

  /// Piggybacked propagation delay between the negotiating pair (the CTS
  /// of Fig. 4 carries tau_{j,k}); zero when not applicable.
  Duration pair_delay{};

  /// Announced airtime of the upcoming DATA of this handshake (carried by
  /// RTS/CTS so overhearers can compute the Eq.-5 Ack slot).
  Duration data_duration{};

  /// Payload bits delivered to the upper layer (DATA/EXDATA only).
  std::uint32_t data_bits{0};

  // --- end-to-end header (multi-hop mode, §3.1/Fig. 1) ----------------
  /// Originating sensor and final destination (surface sink); kNoNode
  /// when the packet is single-hop (the paper's MAC-level evaluation).
  NodeId origin{kNoNode};
  NodeId final_dst{kNoNode};
  std::uint8_t hop_count{0};
  /// Network-layer id assigned at the origin; constant across hops.
  std::uint64_t e2e_id{0};
  /// Origin enqueue time, for end-to-end latency.
  Time created_at{};

  // --- piggybacked route advertisement (DvRouter, docs/routing.md) ----
  /// Every frame a DV-routed node transmits carries its current best
  /// convergecast route; receivers fold it into their tables together
  /// with the frame's measured one-hop delay. route_next_hop is the
  /// advertiser's own next hop, which receivers use for split-horizon
  /// filtering. route_valid = false when the sender has no route (or the
  /// scenario does not run the DV protocol at all).
  bool route_valid{false};
  NodeId route_sink{kNoNode};
  std::uint32_t route_seq{0};
  Duration route_cost{};
  std::uint32_t route_hops{0};
  NodeId route_next_hop{kNoNode};

  /// kMaint payload: the sender's one-hop table, from which receivers
  /// build two-hop state (ROPA / CS-MAC). The encoded size is already
  /// reflected in size_bits; the pointer is the simulator-level content.
  std::shared_ptr<const std::vector<NeighborInfo>> neighbor_info{};

  [[nodiscard]] bool control() const { return is_control(type); }
  [[nodiscard]] bool extra() const { return is_extra(type); }
  [[nodiscard]] std::string to_string() const;
};

class StateReader;
class StateWriter;

/// Checkpoint encoding of a full frame, including the neighbor_info
/// payload (as a has-bit plus entries; restored frames own a fresh copy).
void save_frame(StateWriter& writer, const Frame& frame);
[[nodiscard]] Frame read_frame(StateReader& reader);

}  // namespace aquamac

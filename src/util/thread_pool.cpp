#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace aquamac {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock{mutex_};
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock{mutex_};
    tasks_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock{mutex_};
  idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock{mutex_};
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ && drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock lock{mutex_};
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

unsigned default_jobs() {
  if (const char* env = std::getenv("AQUAMAC_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned resolve_jobs(unsigned jobs) { return jobs == 0 ? default_jobs() : jobs; }

void parallel_for(unsigned jobs, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (jobs <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs, count));
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error{nullptr};
  std::mutex error_mutex;

  ThreadPool pool{workers};
  for (unsigned w = 0; w < workers; ++w) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          std::scoped_lock lock{error_mutex};
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace aquamac

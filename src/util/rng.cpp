// rng.hpp is header-only; this TU exists to give the module a home for
// future out-of-line additions and to compile the header standalone under
// the project's warning set.
#include "util/rng.hpp"

namespace aquamac {
static_assert(Rng::min() == 0);
static_assert(Rng::max() == ~0ULL);
}  // namespace aquamac

#include "util/cli.hpp"

#include <sstream>

namespace aquamac {

CliParser::CliParser(std::string program, std::vector<FlagSpec> spec)
    : program_{std::move(program)}, spec_{std::move(spec)} {
  for (const FlagSpec& flag : spec_) values_[flag.name] = flag.default_value;
}

const CliParser::FlagSpec& CliParser::find_spec(const std::string& name) const {
  for (const FlagSpec& flag : spec_) {
    if (flag.name == name) return flag;
  }
  throw std::invalid_argument(program_ + ": unknown flag --" + name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return false;
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      (void)find_spec(arg);
    } else {
      (void)find_spec(arg);
      // Boolean switch unless the next token is a value.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    values_[arg] = std::move(value);
  }
  return true;
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n\nflags:\n";
  for (const FlagSpec& flag : spec_) {
    os << "  --" << flag.name;
    if (!flag.default_value.empty()) os << " (default: " << flag.default_value << ")";
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

bool CliParser::has(const std::string& name) const {
  (void)find_spec(name);
  const auto it = values_.find(name);
  return it != values_.end() && !it->second.empty();
}

std::string CliParser::get(const std::string& name) const {
  (void)find_spec(name);
  return values_.at(name);
}

double CliParser::get_double(const std::string& name) const {
  const std::string raw = get(name);
  try {
    std::size_t pos = 0;
    const double v = std::stod(raw, &pos);
    if (pos != raw.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(program_ + ": --" + name + " expects a number, got '" + raw +
                                "'");
  }
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string raw = get(name);
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(raw, &pos);
    if (pos != raw.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(program_ + ": --" + name + " expects an integer, got '" + raw +
                                "'");
  }
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string raw = get(name);
  if (raw == "true" || raw == "1" || raw == "yes" || raw == "on") return true;
  if (raw == "false" || raw == "0" || raw == "no" || raw == "off" || raw.empty()) return false;
  throw std::invalid_argument(program_ + ": --" + name + " expects a boolean, got '" + raw +
                              "'");
}

}  // namespace aquamac

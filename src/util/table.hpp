#pragma once
// ASCII table / CSV emitter used by the bench harness to print the same
// rows and series the paper's figures report.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace aquamac {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::vector<double>& values, int precision = 4);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders a box-drawing-free, monospace-aligned ASCII table.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (no quoting needed for our content).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by benches).
[[nodiscard]] std::string format_double(double v, int precision = 4);

}  // namespace aquamac

#include "util/logging.hpp"

#include <cinttypes>
#include <cstdio>

namespace aquamac {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogSink stderr_sink() {
  return [](LogLevel level, std::string_view msg) {
    std::fprintf(stderr, "[%s] %.*s\n", to_string(level).data(),
                 static_cast<int>(msg.size()), msg.data());
  };
}

Logger Logger::with_tag(std::string tag) const {
  if (!sink_) return *this;
  LogSink parent = sink_;
  return Logger{level_, [parent, tag = std::move(tag)](LogLevel level, std::string_view msg) {
                  parent(level, "[" + tag + "] " + std::string{msg});
                }};
}

std::string Duration::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6fs", to_seconds());
  return buf;
}

std::string Time::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "t=%.6fs", to_seconds());
  return buf;
}

}  // namespace aquamac

#pragma once
// Order statistics over a sample set: mean/stddev/min/max/percentiles.
// Used by the trace analysis for latency distributions.
//
// `values()` exposes the samples in insertion order (trace analysis
// relies on it), so the order statistics must never sort `values_` in
// place. percentile() sorts into a separate cache instead, guarded by a
// mutex so concurrent const readers sharing one Samples (e.g. sweep
// workers under --jobs) are race-free; min()/max() scan unsorted.

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace aquamac {

class Samples {
 public:
  Samples() = default;
  // The cache mutex is not copyable; copies share no cache state.
  Samples(const Samples& other) : values_{other.values_} {}
  Samples& operator=(const Samples& other) {
    if (this != &other) {
      values_ = other.values_;
      const std::lock_guard<std::mutex> lock{sort_mutex_};
      sorted_cache_.clear();
    }
    return *this;
  }

  void add(double value) { values_.push_back(value); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  [[nodiscard]] double mean() const {
    if (values_.empty()) return 0.0;
    double sum = 0.0;
    for (double v : values_) sum += v;
    return sum / static_cast<double>(values_.size());
  }

  /// Sample standard deviation (n-1); zero for fewer than two samples.
  [[nodiscard]] double stddev() const {
    if (values_.size() < 2) return 0.0;
    const double m = mean();
    double ss = 0.0;
    for (double v : values_) ss += (v - m) * (v - m);
    return std::sqrt(ss / static_cast<double>(values_.size() - 1));
  }

  [[nodiscard]] double min() const {
    if (values_.empty()) return 0.0;
    return *std::min_element(values_.begin(), values_.end());
  }
  [[nodiscard]] double max() const {
    if (values_.empty()) return 0.0;
    return *std::max_element(values_.begin(), values_.end());
  }

  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const {
    if (values_.empty()) return 0.0;
    if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of [0, 100]");
    const std::lock_guard<std::mutex> lock{sort_mutex_};
    if (sorted_cache_.size() != values_.size()) {
      sorted_cache_ = values_;
      std::sort(sorted_cache_.begin(), sorted_cache_.end());
    }
    const double rank = p / 100.0 * static_cast<double>(sorted_cache_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted_cache_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted_cache_[lo] * (1.0 - frac) + sorted_cache_[hi] * frac;
  }

  /// Samples in insertion order; never reordered by the order statistics.
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_cache_;
  mutable std::mutex sort_mutex_;
};

}  // namespace aquamac

#pragma once
// Order statistics over a sample set: mean/stddev/min/max/percentiles.
// Used by the trace analysis for latency distributions.

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace aquamac {

class Samples {
 public:
  void add(double value) {
    values_.push_back(value);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  [[nodiscard]] double mean() const {
    if (values_.empty()) return 0.0;
    double sum = 0.0;
    for (double v : values_) sum += v;
    return sum / static_cast<double>(values_.size());
  }

  /// Sample standard deviation (n-1); zero for fewer than two samples.
  [[nodiscard]] double stddev() const {
    if (values_.size() < 2) return 0.0;
    const double m = mean();
    double ss = 0.0;
    for (double v : values_) ss += (v - m) * (v - m);
    return std::sqrt(ss / static_cast<double>(values_.size() - 1));
  }

  [[nodiscard]] double min() const {
    ensure_sorted();
    return values_.empty() ? 0.0 : values_.front();
  }
  [[nodiscard]] double max() const {
    ensure_sorted();
    return values_.empty() ? 0.0 : values_.back();
  }

  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const {
    if (values_.empty()) return 0.0;
    if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of [0, 100]");
    ensure_sorted();
    const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }

  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> values_;
  mutable bool sorted_{false};
};

}  // namespace aquamac

#pragma once
// Minimal streaming JSON writer for machine-readable bench output
// (BENCH_*.json). Handles comma placement, string escaping and
// round-trippable number formatting; no reading, no DOM — callers emit
// objects/arrays in document order.
//
//   JsonWriter j{os};
//   j.begin_object();
//   j.key("wall_s").value(1.25);
//   j.key("series").begin_array();
//   j.value(0.1).value(0.2);
//   j.end_array();
//   j.end_object();

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace aquamac {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_{os} {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next value/begin_* call is its value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view{s}); }
  JsonWriter& value(double v);  ///< NaN/Inf are emitted as null
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

 private:
  void before_value();
  void write_escaped(std::string_view s);

  struct Scope {
    bool is_object;
    bool first{true};
  };

  std::ostream& os_;
  std::vector<Scope> stack_;
  bool pending_key_{false};
};

}  // namespace aquamac

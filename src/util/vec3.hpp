#pragma once
// Minimal 3-D vector for node positions (metres). Convention: x, y are
// horizontal; z is *depth* in metres, increasing downward (z = 0 is the
// surface), matching the oceanographic convention used by the channel
// models.

#include <cmath>
#include <compare>
#include <string>

namespace aquamac {

struct Vec3 {
  double x{0.0};
  double y{0.0};
  double z{0.0};  ///< depth below surface, metres (>= 0 underwater)

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double k) const { return {x * k, y * k, z * k}; }
  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr auto operator<=>(const Vec3&) const = default;

  [[nodiscard]] constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  [[nodiscard]] double norm() const { return std::sqrt(dot(*this)); }
  [[nodiscard]] constexpr double norm_sq() const { return dot(*this); }

  [[nodiscard]] double distance_to(const Vec3& o) const { return (*this - o).norm(); }
  /// Horizontal (surface-projected) distance, used by the ray model.
  [[nodiscard]] double horizontal_distance_to(const Vec3& o) const {
    const double dx = x - o.x;
    const double dy = y - o.y;
    return std::sqrt(dx * dx + dy * dy);
  }

  [[nodiscard]] std::string to_string() const;
};

constexpr Vec3 operator*(double k, const Vec3& v) { return v * k; }

inline std::string Vec3::to_string() const {
  return "(" + std::to_string(x) + ", " + std::to_string(y) + ", " + std::to_string(z) + ")";
}

}  // namespace aquamac

#pragma once
// Instrumentation seam for per-phase wall-time breakdowns.
//
// The hot path of a run splits into two dominant phases: *channel
// delivery* (candidate lookup + per-receiver path/budget evaluation in
// AcousticChannel::start_transmission) and *MAC processing* (arrival
// resolution + protocol FSM work under AcousticModem::finish_arrival).
// Production code only calls begin()/end() through this interface and
// never reads a clock itself — src/ stays free of wall-clock use (the
// aquamac-lint wall-clock rule); the timing implementation lives with
// the benchmarks (bench/bench_util.hpp PhaseProfiler).
//
// Hooks are a profiling aid for *serial* runs: implementations are not
// required to be thread-safe, so the harness must not install one on a
// sharded/parallel run it cares about timing-wise (begin/end pairs from
// concurrent shards would interleave).

namespace aquamac {

enum class SimPhase {
  kChannelDelivery,  ///< AcousticChannel::start_transmission body
  kMacProcessing,    ///< AcousticModem::finish_arrival body
};

class PhaseHook {
 public:
  virtual ~PhaseHook() = default;
  virtual void begin(SimPhase phase) = 0;
  virtual void end(SimPhase phase) = 0;
};

/// RAII begin/end pair; a null hook makes the scope free.
class PhaseScope {
 public:
  PhaseScope(PhaseHook* hook, SimPhase phase) : hook_{hook}, phase_{phase} {
    if (hook_ != nullptr) hook_->begin(phase_);
  }
  ~PhaseScope() {
    if (hook_ != nullptr) hook_->end(phase_);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseHook* hook_;
  SimPhase phase_;
};

}  // namespace aquamac

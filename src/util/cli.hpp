#pragma once
// Minimal declarative command-line flag parser for the tools and
// examples: --name=value / --name value / --flag, with typed accessors,
// automatic --help text, and unknown-flag errors.

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace aquamac {

class CliParser {
 public:
  /// `spec` entries register flags: name, default (empty = required off
  /// switch), help line.
  struct FlagSpec {
    std::string name;
    std::string default_value;
    std::string help;
  };

  CliParser(std::string program, std::vector<FlagSpec> spec);

  /// Parses argv. Returns false if --help was requested (help text is in
  /// help_text()). Throws std::invalid_argument on unknown flags or
  /// malformed values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string help_text() const;

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Non-flag positional arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  const FlagSpec& find_spec(const std::string& name) const;

  std::string program_;
  std::vector<FlagSpec> spec_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace aquamac

#pragma once
// Deterministic pseudo-random number generation.
//
// We implement xoshiro256** seeded through splitmix64 rather than relying
// on std::mt19937_64 + std::distributions, because the standard
// distributions are implementation-defined: the same seed produces
// different streams on different standard libraries, which would make the
// test-suite trace hashes non-portable. Every distribution here is
// specified exactly.

#include <array>
#include <cstdint>
#include <cmath>
#include <numbers>

namespace aquamac {

/// splitmix64: used to expand a single 64-bit seed into generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna), a fast all-purpose generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  /// Derives an independent stream for a sub-component (e.g. per node),
  /// so adding a consumer never perturbs the draws of existing ones.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const {
    std::uint64_t mix = state_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL + 0x853c49e6748fea9bULL);
    return Rng{splitmix64_next(mix)};
  }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [0, n) via Lemire's unbiased multiply-shift.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) {
    if (n == 0) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  [[nodiscard]] bool bernoulli(double p) { return uniform01() < p; }

  /// Exponential with given mean (inverse-CDF method); mean <= 0 yields 0.
  [[nodiscard]] double exponential(double mean) {
    if (mean <= 0.0) return 0.0;
    // 1 - u in (0, 1] avoids log(0).
    return -mean * std::log(1.0 - uniform01());
  }

  /// Standard normal via Box-Muller (one draw discarded for simplicity).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) {
    const double u1 = 1.0 - uniform01();
    const double u2 = uniform01();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Raw engine words, for checkpointing (sim/checkpoint.hpp). A stream
  /// restored via set_state continues with exactly the draws the saved
  /// stream would have produced.
  using State = std::array<std::uint64_t, 4>;
  [[nodiscard]] const State& state() const { return state_; }
  void set_state(const State& state) { state_ = state; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }
  State state_{};
};

}  // namespace aquamac

#pragma once
// Tiny leveled logger. Simulation components log through a Logger value
// they are given (no global mutable state), so tests can capture output
// and parallel runs do not interleave.

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "util/time.hpp"

namespace aquamac {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

[[nodiscard]] std::string_view to_string(LogLevel level);

/// A sink receives fully formatted lines.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Default sink writing to stderr.
[[nodiscard]] LogSink stderr_sink();

class Logger {
 public:
  Logger() = default;
  Logger(LogLevel level, LogSink sink) : level_{level}, sink_{std::move(sink)} {}

  [[nodiscard]] static Logger off() { return Logger{LogLevel::kOff, nullptr}; }
  [[nodiscard]] static Logger to_stderr(LogLevel level = LogLevel::kWarn) {
    return Logger{level, stderr_sink()};
  }

  [[nodiscard]] bool enabled(LogLevel level) const {
    return sink_ && level >= level_;
  }
  [[nodiscard]] LogLevel level() const { return level_; }
  void set_level(LogLevel level) { level_ = level; }

  void log(LogLevel level, std::string_view msg) const {
    if (enabled(level)) sink_(level, msg);
  }

  /// Creates a child logger whose lines carry "[tag] " prefixes; shares
  /// the sink, so capture in tests still sees everything.
  [[nodiscard]] Logger with_tag(std::string tag) const;

 private:
  LogLevel level_{LogLevel::kOff};
  LogSink sink_{};
};

/// Stream-style helper: LOG_AT(logger, LogLevel::kDebug) << "x=" << x;
/// The stream body is not evaluated when the level is disabled.
class LogLine {
 public:
  LogLine(const Logger& logger, LogLevel level) : logger_{logger}, level_{level} {}
  ~LogLine() { logger_.log(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  LogLine& operator<<(Time t) {
    stream_ << t.to_string();
    return *this;
  }
  LogLine& operator<<(Duration d) {
    stream_ << d.to_string();
    return *this;
  }

 private:
  const Logger& logger_;
  LogLevel level_;
  std::ostringstream stream_;
};

#define AQUAMAC_LOG(logger, level)             \
  if (!(logger).enabled(level)) {              \
  } else                                       \
    ::aquamac::LogLine{(logger), (level)}

}  // namespace aquamac

#include "util/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace aquamac {

void JsonWriter::before_value() {
  if (stack_.empty()) return;
  Scope& scope = stack_.back();
  if (scope.is_object && !pending_key_) return;  // key() already separated
  if (!scope.is_object) {
    if (!scope.first) os_ << ',';
    scope.first = false;
  }
  pending_key_ = false;
}

void JsonWriter::write_escaped(std::string_view s) {
  os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Scope{/*is_object=*/true});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  stack_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Scope{/*is_object=*/false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  stack_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  Scope& scope = stack_.back();
  if (!scope.first) os_ << ',';
  scope.first = false;
  write_escaped(name);
  os_ << ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  write_escaped(s);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";
    return *this;
  }
  // Shortest round-trippable decimal: %.17g always round-trips an IEEE
  // double; try %.15g first for readability.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.15g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  if (parsed != v) std::snprintf(buf, sizeof buf, "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

}  // namespace aquamac

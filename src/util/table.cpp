#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace aquamac {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        for (std::size_t pad = cells[c].size(); pad < widths[c] + 2; ++pad) os << ' ';
      }
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  for (std::size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace aquamac

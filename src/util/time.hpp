#pragma once
// Strong integer-nanosecond time types for deterministic simulation.
//
// The simulator quantizes every physical delay (propagation, airtime) to
// whole nanoseconds exactly once, at the point where it is computed from
// floating-point physics. From then on all arithmetic is exact 64-bit
// integer math, so event ordering is total and platform-independent.

#include <cstdint>
#include <compare>
#include <limits>
#include <cmath>
#include <string>

namespace aquamac {

/// A span of simulated time. Internally whole nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanoseconds(std::int64_t ns) { return Duration{ns}; }
  [[nodiscard]] static constexpr Duration microseconds(std::int64_t us) {
    return Duration{us * 1'000};
  }
  [[nodiscard]] static constexpr Duration milliseconds(std::int64_t ms) {
    return Duration{ms * 1'000'000};
  }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) {
    return Duration{s * 1'000'000'000};
  }

  /// Quantizes a floating-point second count to whole nanoseconds
  /// (round-to-nearest). This is the single FP -> integer boundary.
  [[nodiscard]] static Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(std::llround(s * 1e9))};
  }

  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_milliseconds() const { return static_cast<double>(ns_) * 1e-6; }

  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  /// Exact integer scaling (truncating, like built-in /): lets callers
  /// write `d * 3 / 4` instead of round-tripping through count_ns().
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  /// Integer division: how many whole `o` fit in *this (o must be > 0).
  [[nodiscard]] constexpr std::int64_t divide_floor(Duration o) const {
    std::int64_t q = ns_ / o.ns_;
    // Adjust C++ truncation toward zero to floor for negative operands.
    if ((ns_ % o.ns_ != 0) && ((ns_ < 0) != (o.ns_ < 0))) --q;
    return q;
  }
  /// Ceiling division, as used by the paper's Eq. (5).
  [[nodiscard]] constexpr std::int64_t divide_ceil(Duration o) const {
    return -((-*this).divide_floor(o));
  }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

constexpr Duration operator*(std::int64_t k, Duration d) { return d * k; }

/// An absolute instant on the simulation clock (ns since simulation start).
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time from_ns(std::int64_t ns) { return Time{ns}; }
  [[nodiscard]] static Time from_seconds(double s) {
    return Time{Duration::from_seconds(s).count_ns()};
  }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  [[nodiscard]] static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time operator+(Duration d) const { return Time{ns_ + d.count_ns()}; }
  constexpr Time operator-(Duration d) const { return Time{ns_ - d.count_ns()}; }
  constexpr Duration operator-(Time o) const { return Duration::nanoseconds(ns_ - o.ns_); }
  constexpr Time& operator+=(Duration d) { ns_ += d.count_ns(); return *this; }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

/// Closed-open interval [begin, end) on the simulation clock; the shape of
/// every packet arrival window and transmit window in the PHY.
struct TimeInterval {
  Time begin;
  Time end;

  [[nodiscard]] constexpr bool overlaps(const TimeInterval& o) const {
    // Empty (zero-length) intervals contain no instants and overlap
    // nothing; the second conjunct alone would misreport them.
    return begin < o.end && o.begin < end && begin < end && o.begin < o.end;
  }
  [[nodiscard]] constexpr bool contains(Time t) const { return begin <= t && t < end; }
  [[nodiscard]] constexpr Duration length() const { return end - begin; }
  constexpr auto operator<=>(const TimeInterval&) const = default;
};

}  // namespace aquamac

#pragma once
// Small fixed-size task-queue thread pool for the harness.
//
// Simulation *runs* are embarrassingly parallel — each owns its own
// Simulator, Network and RNG — so the pool only needs to fan whole runs
// out across cores; there is no work inside a run to steal. Tasks are
// pulled from a single mutex-protected queue (a task here is an entire
// multi-second simulation, so queue contention is irrelevant).
//
// `parallel_for` is the harness entry point: it executes fn(0..count)
// across `jobs` workers and rethrows the first task exception on the
// calling thread. With jobs <= 1 it degenerates to a plain serial loop
// on the caller's thread — byte-for-byte today's code path.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aquamac {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);

  /// Joins; pending tasks are still executed before shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw out of the pool unobserved;
  /// use parallel_for (or catch inside the task) for exception transport.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_{0};
  bool stopping_{false};
};

/// Number of workers `jobs = 0` (auto) resolves to: the AQUAMAC_JOBS
/// environment variable if set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (at least 1).
[[nodiscard]] unsigned default_jobs();

/// Resolves a jobs knob: 0 = auto (default_jobs()), otherwise the value.
[[nodiscard]] unsigned resolve_jobs(unsigned jobs);

/// Runs fn(i) for every i in [0, count) across `jobs` workers. Blocks
/// until all iterations finish; the first exception thrown by any
/// iteration is rethrown here (remaining iterations still run, so every
/// output slot an iteration owns is either written or untouched).
/// jobs <= 1 executes serially on the calling thread.
void parallel_for(unsigned jobs, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace aquamac

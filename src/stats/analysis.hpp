#pragma once
// Trace-driven post-run analysis: channel utilization, airtime breakdown
// by frame class, loss anatomy, per-node activity, and handshake
// reconstruction. Everything is computed from the structured PHY trace —
// the same evidence an external observer (or a plot script reading the
// CSV) would have — so it double-checks the protocols' own counters.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/trace.hpp"
#include "util/samples.hpp"

namespace aquamac {

/// Fraction of [begin, end) during which at least one node was radiating,
/// computed from kTxStart events and frame airtimes at `bit_rate_bps`.
struct UtilizationReport {
  double busy_fraction{0.0};
  Duration total_airtime{};   ///< sum over transmissions (can exceed span)
  Duration busy_time{};       ///< union of transmission windows
  std::uint64_t transmissions{0};
};

[[nodiscard]] UtilizationReport channel_utilization(const MemoryTrace& trace,
                                                    TimeInterval span,
                                                    double bit_rate_bps = 12'000.0);

/// Airtime share per frame class, as fractions of total radiated airtime.
struct AirtimeBreakdown {
  double data{0.0};      ///< DATA + EXDATA
  double control{0.0};   ///< RTS/CTS/ACK + extra control + RTA
  double discovery{0.0}; ///< HELLO + MAINT
};

[[nodiscard]] AirtimeBreakdown airtime_breakdown(const MemoryTrace& trace,
                                                 double bit_rate_bps = 12'000.0);

/// Loss anatomy: how many receptions failed, by cause.
struct LossReport {
  std::uint64_t receptions_ok{0};
  std::uint64_t collisions{0};
  std::uint64_t half_duplex{0};
  std::uint64_t channel_errors{0};
  [[nodiscard]] std::uint64_t total_lost() const {
    return collisions + half_duplex + channel_errors;
  }
  [[nodiscard]] double loss_ratio() const {
    const auto total = receptions_ok + total_lost();
    return total > 0 ? static_cast<double>(total_lost()) / static_cast<double>(total) : 0.0;
  }
};

[[nodiscard]] LossReport loss_report(const MemoryTrace& trace);

/// Per-node transmit/receive activity, for spotting hot spots.
struct NodeActivity {
  std::uint64_t frames_sent{0};
  std::uint64_t frames_received{0};
  std::uint64_t losses_seen{0};
};

[[nodiscard]] std::map<NodeId, NodeActivity> node_activity(const MemoryTrace& trace);

/// Reconstructed four-way handshakes, matched by (initiator, responder,
/// seq) across RTS -> CTS -> DATA -> ACK receptions.
struct HandshakeReport {
  std::uint64_t rts_sent{0};
  std::uint64_t completed{0};            ///< full RTS..ACK chains observed
  double completion_ratio{0.0};
  Duration mean_duration{};              ///< RTS tx start -> ACK reception
  Samples durations_s{};                 ///< per-chain durations (seconds)
};

[[nodiscard]] HandshakeReport reconstruct_handshakes(const MemoryTrace& trace);

/// Human-readable multi-section report (examples/trace_analysis).
[[nodiscard]] std::string analysis_report(const MemoryTrace& trace, TimeInterval span,
                                          double bit_rate_bps = 12'000.0);

}  // namespace aquamac

#pragma once
// Closed-form capacity bounds for the slotted handshake protocols in a
// single collision domain — the analytic backbone the simulation is
// validated against (tests/capacity_test.cpp).
//
// In one collision domain, a slotted four-way handshake serializes the
// medium: each delivered packet costs
//     RTS slot + CTS slot + ceil((TD + tau)/|ts|) data slots + ACK slot
// so saturation throughput is payload / (slots * |ts|). EW-MAC's extra
// phase can at best piggyback `k` extra packets per negotiated exchange
// (one granted extra per winner, §4.2), bounding its gain at (1 + k)x.

#include <cstdint>

#include "util/time.hpp"

namespace aquamac {

struct CapacityParams {
  double bit_rate_bps{12'000.0};
  std::uint32_t control_bits{64};
  Duration tau_max{Duration::seconds(1)};
  std::uint32_t data_bits{2'048};
};

/// omega = control airtime; |ts| = omega + tau_max (§4.1).
[[nodiscard]] Duration capacity_slot_length(const CapacityParams& params);

/// Slots consumed by one complete negotiated exchange, with the data
/// occupancy computed at the worst-case pair delay tau_max (the S-FAMA
/// reservation rule).
[[nodiscard]] std::int64_t exchange_slots(const CapacityParams& params);

/// Saturation throughput (kbps) of a slotted four-way handshake protocol
/// when the whole network is one collision domain and exchanges are
/// perfectly back-to-back (zero contention cost): a strict upper bound on
/// S-FAMA/ROPA-core throughput.
[[nodiscard]] double single_domain_handshake_capacity_kbps(const CapacityParams& params);

/// EW-MAC upper bound: every exchange additionally carries
/// `extras_per_exchange` extra data packets inside the waiting periods.
[[nodiscard]] double ewmac_capacity_upper_bound_kbps(const CapacityParams& params,
                                                     std::uint32_t extras_per_exchange = 1);

/// The raw medium bound: payload bits per second if the channel carried
/// nothing but back-to-back data frames.
[[nodiscard]] double raw_channel_capacity_kbps(const CapacityParams& params);

}  // namespace aquamac

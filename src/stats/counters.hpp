#pragma once
// Per-node counters from which every figure's metric is derived.
//
// Byte/frame counts are classified by frame type so the Fig. 10 overhead
// ratio (control + maintenance + retransmission cost relative to S-FAMA)
// is computed from first principles rather than estimated.

#include <array>
#include <cstdint>

#include "phy/frame.hpp"
#include "util/time.hpp"

namespace aquamac {

class StateReader;
class StateWriter;

inline constexpr std::size_t kFrameTypeCount = 11;

[[nodiscard]] constexpr std::size_t frame_type_index(FrameType t) {
  return static_cast<std::size_t>(t);
}

// lint: stats-class(merged by operator+=, checkpointed by save_state)
struct MacCounters {
  // --- transmit side, by frame class --------------------------------
  std::array<std::uint64_t, kFrameTypeCount> frames_sent{};
  std::array<std::uint64_t, kFrameTypeCount> bits_sent{};
  std::uint64_t retransmitted_frames{0};
  std::uint64_t retransmitted_bits{0};
  /// Neighbor-information surcharge (Fig. 10 accounting): the bits of
  /// timestamp/delay/two-hop state a protocol's control packets carry on
  /// top of the bare 64-bit Table-2 frame. Counted per control frame
  /// from MacConfig::control_info_* (§5.3's "carrying more information
  /// as piggyback").
  std::uint64_t piggyback_info_bits{0};

  // --- receive side ---------------------------------------------------
  std::array<std::uint64_t, kFrameTypeCount> frames_received{};
  std::uint64_t rx_collisions{0};

  // --- upper-layer data accounting (Eq. 2) ----------------------------
  std::uint64_t packets_offered{0};
  std::uint64_t bits_offered{0};
  std::uint64_t packets_delivered{0};   ///< DATA/EXDATA received at dst
  std::uint64_t bits_delivered{0};
  std::uint64_t packets_sent_ok{0};     ///< acked at the sender
  std::uint64_t packets_dropped{0};     ///< retry budget exhausted
  std::uint64_t duplicate_deliveries{0};///< retransmissions after lost Acks

  // --- handshake outcomes ----------------------------------------------
  std::uint64_t handshake_attempts{0};
  std::uint64_t handshake_successes{0};
  std::uint64_t contention_losses{0};
  std::uint64_t extra_attempts{0};      ///< EW-MAC EXR / ROPA RTA / CS-MAC steals
  std::uint64_t extra_successes{0};

  // --- latency ----------------------------------------------------------
  Duration total_delivery_latency{};    ///< enqueue -> acked at sender, summed
  std::uint64_t latency_samples{0};     ///< packets contributing to the sum
  Time last_delivery_time{};            ///< Fig. 8 execution time input

  void count_sent(const Frame& frame) {
    frames_sent[frame_type_index(frame.type)] += 1;
    bits_sent[frame_type_index(frame.type)] += frame.size_bits;
  }
  void count_received(const Frame& frame) {
    frames_received[frame_type_index(frame.type)] += 1;
  }

  [[nodiscard]] std::uint64_t total_bits_sent() const {
    std::uint64_t sum = 0;
    for (auto b : bits_sent) sum += b;
    return sum;
  }
  [[nodiscard]] std::uint64_t control_bits_sent() const;
  [[nodiscard]] std::uint64_t maintenance_bits_sent() const {
    return bits_sent[frame_type_index(FrameType::kMaint)] +
           bits_sent[frame_type_index(FrameType::kHello)];
  }

  MacCounters& operator+=(const MacCounters& o);

  /// Checkpoint encoding of every counter field (sim/checkpoint.hpp).
  void save_state(StateWriter& writer) const;
  void restore_state(StateReader& reader);
};

}  // namespace aquamac

#include "stats/capacity.hpp"

namespace aquamac {

Duration capacity_slot_length(const CapacityParams& params) {
  const Duration omega =
      Duration::from_seconds(static_cast<double>(params.control_bits) / params.bit_rate_bps);
  return omega + params.tau_max;
}

std::int64_t exchange_slots(const CapacityParams& params) {
  const Duration slot = capacity_slot_length(params);
  const Duration data_airtime =
      Duration::from_seconds(static_cast<double>(params.data_bits) / params.bit_rate_bps);
  const std::int64_t data_occupancy = (data_airtime + params.tau_max).divide_ceil(slot);
  return 2 + data_occupancy + 1;  // RTS + CTS + data + ACK
}

double single_domain_handshake_capacity_kbps(const CapacityParams& params) {
  const double cycle_s =
      capacity_slot_length(params).to_seconds() * static_cast<double>(exchange_slots(params));
  return static_cast<double>(params.data_bits) / cycle_s / 1'000.0;
}

double ewmac_capacity_upper_bound_kbps(const CapacityParams& params,
                                       std::uint32_t extras_per_exchange) {
  return single_domain_handshake_capacity_kbps(params) *
         (1.0 + static_cast<double>(extras_per_exchange));
}

double raw_channel_capacity_kbps(const CapacityParams& params) {
  return params.bit_rate_bps / 1'000.0;
}

}  // namespace aquamac

#pragma once
// Structured event tracing.
//
// A TraceSink receives one record per PHY-level event (transmit start,
// successful reception, reception failure) network-wide, in simulation
// order. Sinks: in-memory (tests, analysis), CSV (plotting), and a FNV
// hash reducer used by the reproducibility tests — two runs of the same
// (scenario, seed) must produce bit-identical traces.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "channel/reception.hpp"
#include "phy/frame.hpp"
#include "util/time.hpp"

namespace aquamac {

enum class TraceEventKind : std::uint8_t {
  kTxStart,
  kRxOk,
  kRxLost,
};

[[nodiscard]] std::string_view to_string(TraceEventKind kind);

struct TraceEvent {
  TraceEventKind kind{TraceEventKind::kTxStart};
  Time at{};
  NodeId node{kNoNode};     ///< acting node (transmitter or receiver)
  FrameType frame_type{FrameType::kHello};
  NodeId src{kNoNode};
  NodeId dst{kNoNode};
  std::uint64_t seq{0};
  std::uint32_t bits{0};
  RxOutcome outcome{RxOutcome::kSuccess};  ///< meaningful for kRxLost

  [[nodiscard]] std::string to_csv_row() const;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

/// Buffers every event; offers simple queries for tests and analysis.
class MemoryTrace final : public TraceSink {
 public:
  void record(const TraceEvent& event) override { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  [[nodiscard]] std::size_t count(TraceEventKind kind) const;
  [[nodiscard]] std::size_t count_frames(FrameType type) const;
  /// Events are recorded in nondecreasing simulation time.
  [[nodiscard]] bool is_time_ordered() const;

 private:
  std::vector<TraceEvent> events_;
};

/// Streams CSV rows (with header) to any ostream.
class CsvTrace final : public TraceSink {
 public:
  explicit CsvTrace(std::ostream& os);
  void record(const TraceEvent& event) override;

 private:
  std::ostream& os_;
};

/// FNV-1a over the canonical encoding of each event: a run fingerprint.
class HashTrace final : public TraceSink {
 public:
  void record(const TraceEvent& event) override;
  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  void mix(std::uint64_t value);
  std::uint64_t hash_{1469598103934665603ULL};
};

/// Fans one event stream out to several sinks.
class TeeTrace final : public TraceSink {
 public:
  explicit TeeTrace(std::vector<TraceSink*> sinks) : sinks_{std::move(sinks)} {}
  void record(const TraceEvent& event) override {
    for (TraceSink* sink : sinks_) sink->record(event);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace aquamac

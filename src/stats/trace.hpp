#pragma once
// Structured event tracing.
//
// A TraceSink receives one record per PHY-level event (transmit start,
// successful reception, reception failure) and per MAC-level event (state
// transitions, slot boundaries, contention outcomes, extra-communication
// negotiation, neighbor-table updates) network-wide, in simulation order.
// Sinks: in-memory (tests, analysis), CSV (plotting), a FNV hash reducer
// used by the reproducibility tests — two runs of the same
// (scenario, seed) must produce bit-identical traces — and the
// InvariantAuditor (stats/invariant_auditor.hpp).
//
// Parallel harness runs buffer per-run MemoryTraces (one per task, built
// by a TraceSinkFactory) and merge them after the join with
// merge_traces(), ordered by (sim time, run index, intra-run order), so
// the merged stream is bit-identical for every jobs value.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "channel/reception.hpp"
#include "phy/frame.hpp"
#include "util/time.hpp"

namespace aquamac {

enum class TraceEventKind : std::uint8_t {
  // --- PHY events (emitted by AcousticModem) ---------------------------
  kTxStart,
  kRxOk,
  kRxLost,
  // --- MAC events (emitted through MacProtocol::trace_mac) -------------
  kMacState,         ///< handshake FSM transition; a = from, b = to
  kSlotBoundary,     ///< slotted MAC acted on a slot boundary; a = slot index
  kContentionWin,    ///< receiver granted CTS; src = winner, value = rp
  kContentionLoss,   ///< sender lost a contention round (§3.1)
  kExtraNegotiated,  ///< EXC granted; window = validity of the grant
  kExtraScheduled,   ///< EXDATA launch planned; window = its air time (Eq. 6)
  kNeighborUpdate,   ///< delay table refresh; src = neighbor, a = delay ns
  // --- fault-injection events (emitted by Network's FaultPlan) ----------
  kFaultNodeDown,    ///< node enters an outage/sleep window
  kFaultNodeUp,      ///< node rejoins; MAC state was reset
  kFaultClockStep,   ///< clock jitter step; a = step ns, b = new offset ns
  kFaultBurstBegin,  ///< node's Gilbert-Elliott chain entered the bad state
  kFaultBurstEnd,    ///< node's Gilbert-Elliott chain returned to good
  kFaultStormBegin,  ///< network-wide noise storm begins (node = kNoNode)
  kFaultStormEnd,    ///< network-wide noise storm ends (node = kNoNode)
  // --- hardening / recovery events (emitted by MacProtocol) -------------
  kNeighborEvicted,  ///< stale entry aged out; src = neighbor, a = max age ns
  kNeighborDead,     ///< K consecutive silent handshakes; src = neighbor, a = K
  kNeighborProbe,    ///< reinstatement probe of a dead neighbor; src = neighbor
  // --- routing events (DvRouter / RelayAgent, docs/routing.md) ----------
  kRouteUpdate,      ///< best route changed; src = next hop, dst = sink,
                     ///< a = cost ns, b = hops (b = -1: route lost)
  kRelayOriginate,   ///< e2e packet stamped; seq = e2e id, b = advertised hops
  kRelayForward,     ///< e2e packet re-enqueued; seq = e2e id, src = origin,
                     ///< a = hop count after this hop, b = advertised hops here
  kRelayArrive,      ///< e2e packet absorbed by a sink; seq = e2e id,
                     ///< src = origin, a = final hop count
  // --- hop-by-hop reliability events (RelayAgent ARQ, docs/reliability.md)
  kRelayRetry,       ///< custody backoff armed after a MAC drop; seq = e2e
                     ///< id, dst = failed hop, a = retry count, b = wait ns
  kRelayRequeue,     ///< custody retransmission re-enqueued; seq = e2e id,
                     ///< dst = chosen hop, a = retry count, b = 1 if failover
  kRelayDeadLetter,  ///< custody abandoned; seq = e2e id, a = retries spent,
                     ///< b = reason (0 exhausted, 1 overflow, 2 no-route,
                     ///< 3 duplicate custody)
};

[[nodiscard]] std::string_view to_string(TraceEventKind kind);

struct TraceEvent {
  TraceEventKind kind{TraceEventKind::kTxStart};
  Time at{};
  NodeId node{kNoNode};     ///< acting node (transmitter or receiver)
  FrameType frame_type{FrameType::kHello};
  NodeId src{kNoNode};
  NodeId dst{kNoNode};
  std::uint64_t seq{0};
  std::uint32_t bits{0};
  RxOutcome outcome{RxOutcome::kSuccess};  ///< meaningful for kRxLost

  /// Air window (PHY events: [tx begin, tx end) or the arrival window at
  /// this receiver) or validity/plan window (kExtraNegotiated /
  /// kExtraScheduled). Zero for events without a window.
  Time window_begin{};
  Time window_end{};
  /// Kind-specific integers (see TraceEventKind comments).
  std::int64_t a{0};
  std::int64_t b{0};
  /// Kind-specific real value (kContentionWin: the winning rp).
  double value{0.0};

  [[nodiscard]] std::string to_csv_row() const;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

/// Buffers every event; offers simple queries for tests and analysis.
class MemoryTrace final : public TraceSink {
 public:
  void record(const TraceEvent& event) override { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  [[nodiscard]] std::size_t count(TraceEventKind kind) const;
  [[nodiscard]] std::size_t count_frames(FrameType type) const;
  /// Events are recorded in nondecreasing simulation time.
  [[nodiscard]] bool is_time_ordered() const;

 private:
  std::vector<TraceEvent> events_;
};

/// Streams CSV rows (with header) to any ostream.
class CsvTrace final : public TraceSink {
 public:
  explicit CsvTrace(std::ostream& os);
  void record(const TraceEvent& event) override;

 private:
  std::ostream& os_;
};

/// FNV-1a over the canonical encoding of each event: a run fingerprint.
class HashTrace final : public TraceSink {
 public:
  void record(const TraceEvent& event) override;
  [[nodiscard]] std::uint64_t digest() const { return hash_; }
  /// Checkpoint restore: resume accumulating from a saved digest.
  void set_digest(std::uint64_t hash) { hash_ = hash; }

 private:
  void mix(std::uint64_t value);
  std::uint64_t hash_{1469598103934665603ULL};
};

/// Pass-through sink that forwards every event to an inner sink while
/// accumulating a count and running HashTrace digest — the run's trace
/// position, captured by checkpoints (docs/checkpoint.md). In sharded
/// runs it must sit *inside* the DeferredTraceSink so it sees events in
/// barrier-ordered (serial-identical) order.
class TallyTrace final : public TraceSink {
 public:
  explicit TallyTrace(TraceSink& inner) : inner_{&inner} {}

  void record(const TraceEvent& event) override {
    hash_.record(event);
    ++count_;
    inner_->record(event);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t digest() const { return hash_.digest(); }

  /// Checkpoint restore: overwrite the accumulated position.
  void set_state(std::uint64_t count, std::uint64_t digest) {
    count_ = count;
    hash_.set_digest(digest);
  }

 private:
  TraceSink* inner_;
  HashTrace hash_;
  std::uint64_t count_{0};
};

/// Fans one event stream out to several sinks.
class TeeTrace final : public TraceSink {
 public:
  explicit TeeTrace(std::vector<TraceSink*> sinks) : sinks_{std::move(sinks)} {}
  void record(const TraceEvent& event) override {
    for (TraceSink* sink : sinks_) sink->record(event);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// Builds the per-run buffer sink for parallel-harness run `run_index`.
using TraceSinkFactory = std::function<std::unique_ptr<MemoryTrace>(std::size_t run_index)>;

/// The default factory: a plain MemoryTrace per run.
[[nodiscard]] TraceSinkFactory memory_trace_factory();

/// Replays per-run buffered traces into `out`, ordered by
/// (sim time, run index, intra-run order). The order is a pure function
/// of the buffered events, so serial and parallel executions of the same
/// run set produce bit-identical merged streams. Null buffers are
/// skipped.
void merge_traces(const std::vector<std::unique_ptr<MemoryTrace>>& runs, TraceSink& out);

}  // namespace aquamac

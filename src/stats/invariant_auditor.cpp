#include "stats/invariant_auditor.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace aquamac {

namespace {

[[nodiscard]] bool is_negotiated(FrameType type) {
  return type == FrameType::kRts || type == FrameType::kCts || type == FrameType::kData ||
         type == FrameType::kAck;
}

}  // namespace

std::string_view to_string(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kExtraOverlap: return "extra-overlap";
    case InvariantKind::kOffSlotStart: return "off-slot-start";
    case InvariantKind::kAckSlotMismatch: return "ack-slot-mismatch";
    case InvariantKind::kNeighborDelayDrift: return "neighbor-delay-drift";
    case InvariantKind::kPacketRevisit: return "packet-revisit";
    case InvariantKind::kHopCountExceedsRoute: return "hop-count-exceeds-route";
    case InvariantKind::kDuplicateSinkDelivery: return "duplicate-sink-delivery";
    case InvariantKind::kRetryExceedsBound: return "retry-exceeds-bound";
  }
  return "?";
}

// lint: trace-dispatch(TraceEventKind)
// The kinds below carry MAC/fault context the auditor observes but has no
// obligation for: slot/contention/extra bookkeeping is checked from the
// kTxStart path, and burst/storm/clock faults only shape the channel.
// lint: trace-skip(kMacState, kSlotBoundary, kContentionWin, kContentionLoss -- MAC context, no auditor obligation)
// lint: trace-skip(kExtraNegotiated, kExtraScheduled -- extra-overlap theorem is checked at kTxStart)
// lint: trace-skip(kFaultClockStep, kFaultBurstBegin, kFaultBurstEnd, kFaultStormBegin, kFaultStormEnd -- channel-shaping faults, no per-node state)
// lint: trace-skip(kNeighborDead, kNeighborProbe -- probing telemetry, no knowledge change)
void InvariantAuditor::record(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEventKind::kTxStart: on_tx_start(event); break;
    case TraceEventKind::kRxOk:
    case TraceEventKind::kRxLost: on_rx(event); break;
    case TraceEventKind::kNeighborUpdate: on_neighbor_update(event); break;
    case TraceEventKind::kFaultNodeDown:
      node_states_[event.node].down = true;
      break;
    case TraceEventKind::kFaultNodeUp: {
      // The MAC forgot everything on rejoin, so the auditor must too; the
      // node stays unhealthy for the grace period while it re-learns.
      NodeState fresh{};
      fresh.unhealthy_until = event.at + config_.rejoin_grace;
      node_states_[event.node] = std::move(fresh);
      break;
    }
    case TraceEventKind::kNeighborEvicted:
      // The evictor no longer has a measured delay to this neighbor, so
      // knowledge-scoped checks must not hold it to one.
      node_states_[event.node].knows_since.erase(event.src);
      break;
    case TraceEventKind::kRouteUpdate:
      // Routing churn: open the route_grace window for checks (e)/(f).
      any_route_update_ = true;
      last_route_update_ = event.at;
      break;
    case TraceEventKind::kRelayOriginate: on_relay_originate(event); break;
    case TraceEventKind::kRelayForward: on_relay_forward(event); break;
    case TraceEventKind::kRelayArrive: on_relay_arrive(event); break;
    case TraceEventKind::kRelayRetry: on_relay_retry(event); break;
    case TraceEventKind::kRelayRequeue:
      // A failover retransmission (b = 1) legitimately leaves the
      // advertised route, so check (f) no longer bounds this flight.
      if (event.b == 1) {
        const auto it = flights_.find(event.seq);
        if (it != flights_.end()) it->second.advertised_hops = 0;
      }
      break;
    case TraceEventKind::kRelayDeadLetter:
      // Custody abandoned: this copy is gone; stop tracking the flight.
      flights_.erase(event.seq);
      break;
    default: break;  // other MAC events carry context, not obligations
  }
}

bool InvariantAuditor::healthy(NodeId node, Time at) const {
  const auto it = node_states_.find(node);
  if (it == node_states_.end()) return true;
  return !it->second.down && at >= it->second.unhealthy_until;
}

Time InvariantAuditor::match_tx(const TxKey& key, Time arrival_begin) const {
  const auto it = tx_times_.find(key);
  if (it == tx_times_.end()) return arrival_begin;
  // Channel delays can slightly exceed tau_max (refracted paths); accept
  // a slot of slack and keep the latest launch not after the arrival.
  const Duration bound = config_.tau_max + config_.slot_length;
  Time best{};
  bool found = false;
  const std::size_t live = std::min(it->second.count, TxRing::kSlots);
  for (std::size_t i = 0; i < live; ++i) {
    const Time t = it->second.at[i];
    if (t > arrival_begin || arrival_begin - t > bound) continue;
    if (!found || t > best) {
      best = t;
      found = true;
    }
  }
  return found ? best : arrival_begin;
}

void InvariantAuditor::on_tx_start(const TraceEvent& event) {
  tx_times_[TxKey{event.src, static_cast<std::uint8_t>(event.frame_type), event.seq}].push(
      event.at);

  // Every RTS launch (re)starts its exchange's attempt: the retry
  // timeout exceeds the CTS round trip, so all decodes of the previous
  // attempt land before this launch and the scoping in check (a) cannot
  // misclassify them as current.
  if (event.frame_type == FrameType::kRts) {
    attempt_started_[ExchangeKey{std::min(event.src, event.dst),
                                 std::max(event.src, event.dst), event.seq}] = event.at;
  }

  if (config_.slotted && is_negotiated(event.frame_type) &&
      healthy(event.node, event.at)) {
    // (b): negotiated packets start on slot boundaries (§4.1).
    checks_ += 1;
    const Duration offset = event.at - slot_start(slot_index(event.at));
    if (offset > config_.sync_tolerance) {
      std::ostringstream detail;
      detail << "tx at " << event.at.to_string() << " is " << offset.to_string()
             << " past the slot " << slot_index(event.at) << " boundary";
      add_violation(Violation{InvariantKind::kOffSlotStart, event.at, event.node,
                              event.frame_type, event.src, event.dst, event.seq,
                              detail.str()});
    }

    // (c): consume a pending Eq.-5 expectation when the Ack launches.
    if (event.frame_type == FrameType::kAck) {
      NodeState& state = node_states_[event.node];
      const TxKey data_key{event.dst, static_cast<std::uint8_t>(FrameType::kData), event.seq};
      const auto it = state.ack_slot_expect.find(data_key);
      if (it != state.ack_slot_expect.end()) {
        checks_ += 1;
        const std::int64_t actual = slot_index(event.at);
        if (actual != it->second) {
          std::ostringstream detail;
          detail << "ack launched in slot " << actual << ", Eq. (5) expects slot "
                 << it->second;
          add_violation(Violation{InvariantKind::kAckSlotMismatch, event.at, event.node,
                                  event.frame_type, event.src, event.dst, event.seq,
                                  detail.str()});
        }
        state.ack_slot_expect.erase(it);
      }
    }
  }
}

void InvariantAuditor::on_rx(const TraceEvent& event) {
  // Hello / Rta / Maint are outside both the negotiated handshake and the
  // extra phase; they still feed the knowledge maps below via kRxOk.
  const bool audited_class = is_extra(event.frame_type) || is_negotiated(event.frame_type);

  NodeState& state = node_states_[event.node];
  ArrivalWindow window{};
  window.iv = TimeInterval{event.window_begin, event.window_end};
  window.type = event.frame_type;
  window.src = event.src;
  window.dst = event.dst;
  window.seq = event.seq;
  window.tx_at = match_tx(
      TxKey{event.src, static_cast<std::uint8_t>(event.frame_type), event.seq},
      event.window_begin);

  if (event.kind == TraceEventKind::kRxOk) {
    // Knowledge accrual: a decoded frame gives this node a measured delay
    // to its sender (§4.3); a decoded RTS/CTS reveals the exchange.
    state.knows_since.emplace(event.src, event.at);
    if (event.frame_type == FrameType::kRts || event.frame_type == FrameType::kCts) {
      const ExchangeKey key{std::min(event.src, event.dst), std::max(event.src, event.dst),
                            event.seq};
      state.heard[key].push(event.at);
    }
    state.last_rx = window;
    state.last_rx_valid = true;

    // (c) setup: an arrived DATA addressed here defines the Eq.-5 slot of
    // the Ack this node will send. Latest arrival wins (retransmissions).
    if (config_.slotted && event.frame_type == FrameType::kData && event.dst == event.node) {
      const Duration tau = event.window_begin - window.tx_at;
      const Duration airtime = event.window_end - event.window_begin;
      state.ack_slot_expect[TxKey{event.src, static_cast<std::uint8_t>(FrameType::kData),
                                  event.seq}] =
          slot_index(window.tx_at) + (airtime + tau).divide_ceil(config_.slot_length);
    }
  }

  if (audited_class) {
    if (is_extra(event.frame_type)) {
      state.extras.push_back(window);
      check_extra_overlap(event.node, window, /*added_is_extra=*/true);
    } else if (event.dst == event.node && event.frame_type != FrameType::kRts) {
      // RTS launches are the initiator's private backoff draw — nothing a
      // prior decode announces — so an extra clashing with a (re)sent RTS
      // is an ordinary contention collision, not a theorem violation. The
      // windows the theorem does cover (CTS/DATA/ACK, all implied by the
      // decoded negotiation) stay under the obligation.
      state.negotiated.push_back(window);
      check_extra_overlap(event.node, window, /*added_is_extra=*/false);
    }
  }
  prune(event.node, event.at);
}

void InvariantAuditor::check_extra_overlap(NodeId node, const ArrivalWindow& added,
                                           bool added_is_extra) {
  NodeState& state = node_states_[node];
  const auto& others = added_is_extra ? state.negotiated : state.extras;
  for (const ArrivalWindow& other : others) {
    if (!added.iv.overlaps(other.iv)) continue;
    const ArrivalWindow& extra = added_is_extra ? added : other;
    const ArrivalWindow& negotiated = added_is_extra ? other : added;

    // Scope to the extra sender's knowledge at launch time: it must have
    // decoded this exchange's negotiation AND have had a measured delay
    // to this receiver — otherwise the clash was unpredictable (hidden
    // terminal), which the paper's theorem does not cover.
    // Fault scoping: a clash involving a down/re-learning receiver or an
    // extra launched by a node in an unhealthy interval is expected noise,
    // not a theorem violation.
    if (!healthy(node, added.iv.begin) || !healthy(extra.src, extra.tx_at)) continue;

    const auto sender_it = node_states_.find(extra.src);
    if (sender_it == node_states_.end()) continue;
    const NodeState& sender = sender_it->second;
    const ExchangeKey key{std::min(negotiated.src, negotiated.dst),
                          std::max(negotiated.src, negotiated.dst), negotiated.seq};
    const auto heard_it = sender.heard.find(key);
    const auto knows_it = sender.knows_since.find(node);
    checks_ += 1;
    if (heard_it == sender.heard.end()) continue;
    // The knowledge actually in hand at launch: the latest decode of this
    // exchange's negotiation not after the extra's launch.
    Time decode{};
    bool decoded = false;
    const std::size_t live = std::min(heard_it->second.count, TxRing::kSlots);
    for (std::size_t i = 0; i < live; ++i) {
      const Time t = heard_it->second.at[i];
      if (t > extra.tx_at) continue;
      if (!decoded || t > decode) {
        decode = t;
        decoded = true;
      }
    }
    if (!decoded) continue;
    if (knows_it == sender.knows_since.end() || knows_it->second > extra.tx_at) continue;
    // Attempt scoping: a decode of an earlier, failed attempt predicts
    // nothing about the retry that produced this window.
    const auto attempt_it = attempt_started_.find(key);
    if (attempt_it != attempt_started_.end() && decode < attempt_it->second) continue;

    std::ostringstream detail;
    detail << to_string(extra.type) << " from " << extra.src << " ["
           << extra.iv.begin.to_string() << ", " << extra.iv.end.to_string()
           << ") overlaps negotiated " << to_string(negotiated.type) << " "
           << negotiated.src << "->" << negotiated.dst << " ["
           << negotiated.iv.begin.to_string() << ", " << negotiated.iv.end.to_string()
           << ") at receiver " << node;
    add_violation(Violation{InvariantKind::kExtraOverlap, added.iv.begin, node, extra.type,
                            extra.src, negotiated.dst, extra.seq, detail.str()});
  }
}

void InvariantAuditor::on_neighbor_update(const TraceEvent& event) {
  NodeState& state = node_states_[event.node];
  if (!state.last_rx_valid || state.last_rx.src != event.src ||
      state.last_rx.seq != event.seq || state.last_rx.type != event.frame_type) {
    return;
  }
  // Either endpoint in an unhealthy interval exempts the reading.
  if (!healthy(event.node, event.at) || !healthy(event.src, event.at)) return;
  const auto it = tx_times_.find(
      TxKey{event.src, static_cast<std::uint8_t>(event.frame_type), event.seq});
  if (it == tx_times_.end()) return;

  // (d): the recorded delay must match clamp(true delay, 0, tau_max) for
  // at least one recent launch of this frame — a ring because random
  // backoffs can retransmit within tau_max, making "which launch produced
  // this arrival" ambiguous from the key alone.
  const Duration recorded = Duration::nanoseconds(event.a);
  checks_ += 1;
  bool any_candidate = false;
  bool consistent = false;
  const std::size_t live = std::min(it->second.count, TxRing::kSlots);
  for (std::size_t i = 0; i < live; ++i) {
    const Duration true_delay = state.last_rx.iv.begin - it->second.at[i];
    if (true_delay.is_negative()) continue;
    any_candidate = true;
    const Duration clamped = std::clamp(true_delay, Duration::zero(), config_.tau_max);
    const Duration error =
        recorded > clamped ? recorded - clamped : clamped - recorded;
    if (error <= config_.sync_tolerance) {
      consistent = true;
      break;
    }
  }
  if (any_candidate && !consistent) {
    std::ostringstream detail;
    detail << "recorded delay " << recorded.to_string() << " for neighbor " << event.src
           << " matches no recent launch within " << config_.sync_tolerance.to_string();
    add_violation(Violation{InvariantKind::kNeighborDelayDrift, event.at, event.node,
                            event.frame_type, event.src, event.dst, event.seq,
                            detail.str()});
  }
}

bool InvariantAuditor::routes_settled(Time at) const {
  return !any_route_update_ || last_route_update_ + config_.route_grace <= at;
}

void InvariantAuditor::on_relay_originate(const TraceEvent& event) {
  Flight flight{};
  flight.origin_at = event.at;
  flight.advertised_hops = event.b > 0 ? static_cast<std::uint32_t>(event.b) : 0;
  flight.visited.push_back(event.node);
  flights_[event.seq] = std::move(flight);
  prune_flights(event.at);
}

void InvariantAuditor::on_relay_forward(const TraceEvent& event) {
  const auto it = flights_.find(event.seq);
  if (it == flights_.end()) return;  // originated before attach, or pruned
  Flight& flight = it->second;
  const bool revisit =
      std::find(flight.visited.begin(), flight.visited.end(), event.node) !=
      flight.visited.end();
  if (!revisit) flight.visited.push_back(event.node);
  // (e): scoped to settled routes and healthy forwarders — a loop during
  // DV re-convergence (or through a rejoining node) is expected churn.
  if (!healthy(event.node, event.at) || !routes_settled(event.at)) return;
  checks_ += 1;
  if (revisit) {
    std::ostringstream detail;
    detail << "packet " << event.seq << " from origin " << event.src
           << " forwarded through node " << event.node << " twice (hop "
           << event.a << ")";
    add_violation(Violation{InvariantKind::kPacketRevisit, event.at, event.node,
                            event.frame_type, event.src, event.dst, event.seq,
                            detail.str()});
  }
}

void InvariantAuditor::on_relay_retry(const TraceEvent& event) {
  // (h): the relay must never spend more than the configured custody
  // budget on one packet. Stateless — the event carries the retry count.
  if (config_.custody_retry_bound == 0) return;
  if (!healthy(event.node, event.at)) return;
  checks_ += 1;
  if (event.a > static_cast<std::int64_t>(config_.custody_retry_bound)) {
    std::ostringstream detail;
    detail << "packet " << event.seq << " at node " << event.node << " reached retry "
           << event.a << ", custody bound is " << config_.custody_retry_bound;
    add_violation(Violation{InvariantKind::kRetryExceedsBound, event.at, event.node,
                            event.frame_type, event.src, event.dst, event.seq,
                            detail.str()});
  }
}

void InvariantAuditor::on_relay_arrive(const TraceEvent& event) {
  // (g): with the reliability layer on, a sink absorbs each e2e id at
  // most once (the seen_ dedup contract). Scoped per sink node: an
  // ACK-loss fork reaching a *different* sink is permitted behavior.
  if (config_.custody_retry_bound > 0 && healthy(event.node, event.at)) {
    const auto seen = sink_arrivals_.find(event.seq);
    checks_ += 1;
    if (seen != sink_arrivals_.end() && seen->second.sink == event.node) {
      std::ostringstream detail;
      detail << "packet " << event.seq << " from origin " << event.src
             << " absorbed by sink " << event.node << " twice (first at "
             << seen->second.at.to_string() << ")";
      add_violation(Violation{InvariantKind::kDuplicateSinkDelivery, event.at, event.node,
                              event.frame_type, event.src, event.dst, event.seq,
                              detail.str()});
    } else if (seen == sink_arrivals_.end()) {
      sink_arrivals_[event.seq] = Arrival{event.node, event.at};
    }
  }
  const auto it = flights_.find(event.seq);
  if (it == flights_.end()) return;
  const Flight flight = it->second;
  flights_.erase(it);
  if (!healthy(event.node, event.at)) return;
  if (flight.advertised_hops == 0) return;  // origin advertised no length
  // (f) holds only when no route changed network-wide during the flight:
  // a mid-flight reroute legitimately lengthens the realized path.
  if (any_route_update_ && last_route_update_ >= flight.origin_at) return;
  checks_ += 1;
  if (event.a > static_cast<std::int64_t>(flight.advertised_hops)) {
    std::ostringstream detail;
    detail << "packet " << event.seq << " arrived after " << event.a
           << " hops, origin " << event.src << " advertised a " << flight.advertised_hops
           << "-hop route";
    add_violation(Violation{InvariantKind::kHopCountExceedsRoute, event.at, event.node,
                            event.frame_type, event.src, event.dst, event.seq,
                            detail.str()});
  }
}

void InvariantAuditor::prune_flights(Time now) {
  // Dropped packets never arrive; shed flights old enough that nothing
  // could still be relaying them (generous multiple of a per-hop cycle).
  const Duration horizon = 256 * (config_.slot_length + config_.tau_max);
  // The arrival ledger grows with every delivery (flights_ self-erases on
  // arrival, sink_arrivals_ does not), so it prunes on its own trigger.
  if (sink_arrivals_.size() > 4096) {
    std::erase_if(sink_arrivals_, [&](const auto& kv) { return kv.second.at + horizon < now; });
  }
  if (flights_.size() <= 4096) return;
  std::erase_if(flights_,
                [&](const auto& kv) { return kv.second.origin_at + horizon < now; });
}

void InvariantAuditor::prune(NodeId node, Time now) {
  NodeState& state = node_states_[node];
  // Arrival windows stop mattering once nothing in flight can still reach
  // back into them; extra plans never reach past a couple of slots beyond
  // the negotiated Ack, so this horizon is generous.
  const Duration horizon = 2 * (config_.slot_length + config_.tau_max);
  while (!state.negotiated.empty() && state.negotiated.front().iv.end + horizon < now) {
    state.negotiated.pop_front();
  }
  while (!state.extras.empty() && state.extras.front().iv.end + horizon < now) {
    state.extras.pop_front();
  }
  // The heard-exchange map only grows; trim it occasionally on long runs.
  if (state.heard.size() > 4096) {
    const Duration heard_horizon = config_.slot_length * 64;
    std::erase_if(state.heard, [&](const auto& kv) {
      const std::size_t live = std::min(kv.second.count, TxRing::kSlots);
      Time latest{};
      for (std::size_t i = 0; i < live; ++i) latest = std::max(latest, kv.second.at[i]);
      return latest + heard_horizon < now;
    });
  }
}

void InvariantAuditor::add_violation(Violation violation) {
  violations_.push_back(std::move(violation));
  if (config_.hard_fail) {
    const Violation& v = violations_.back();
    throw std::runtime_error("invariant violation [" + std::string{to_string(v.kind)} +
                             "] at node " + std::to_string(v.node) + ": " + v.detail);
  }
}

}  // namespace aquamac

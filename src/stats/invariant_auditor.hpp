#pragma once
// Runtime protocol-invariant auditor.
//
// A TraceSink that replays one run's combined PHY + MAC event stream and
// checks the paper's structural guarantees online, per receiver:
//
//   (a) kExtraOverlap — no extra packet (EXR/EXC/EXDATA/EXACK) overlaps a
//       *negotiated* packet at its intended receiver (§4's theorem). The
//       check is scoped to what the extra's sender could know: a clash is
//       a violation only when the sender had decoded the negotiation
//       (RTS/CTS of that exchange) and had already measured its delay to
//       the garbled receiver before launching — hidden terminals cannot
//       violate a prediction they never saw. Scoped per *attempt*: a
//       handshake retry restarts the schedule at the retry's RTS, so the
//       decode must be of the attempt that produced the clashing window.
//   (b) kOffSlotStart — negotiated packets (RTS/CTS/DATA/ACK) start on
//       slot boundaries (§4.1). Slotted protocols only.
//   (c) kAckSlotMismatch — the Ack's slot equals Eq. (5):
//       ts(Data) + ceil((TD + tau) / |ts|). Slotted protocols only.
//   (d) kNeighborDelayDrift — a neighbor-table delay recorded from a
//       reception is consistent with the channel's true propagation delay
//       (tx start -> arrival begin) within the sync tolerance, after the
//       MAC's [0, tau_max] clamp.
//   (e) kPacketRevisit — no relayed packet is forwarded through the same
//       node twice (docs/routing.md: the tree is loop-free by
//       construction; DV loops are transient). Checked only while routes
//       are settled: any kRouteUpdate opens a route_grace window during
//       which revisits are expected churn, not violations.
//   (f) kHopCountExceedsRoute — a packet's final hop count at the sink
//       never exceeds the route length its origin advertised at launch,
//       provided no route changed anywhere in the network mid-flight
//       (and the packet was never failed over to an alternate hop).
//   (g) kDuplicateSinkDelivery — with the reliability layer on
//       (custody_retry_bound > 0), no sink absorbs the same e2e id twice:
//       the relay dedup contract (docs/reliability.md). Scoped per sink —
//       an ACK-loss fork that reaches two different sinks is permitted.
//   (h) kRetryExceedsBound — a custody retry count (kRelayRetry's `a`)
//       never exceeds the configured custody_retry_bound.
//
// Violations are recorded with full context; hard_fail promotes the first
// one to a std::runtime_error, which is how the soak tests use it. The
// auditor is a per-run sink: node ids collide across merged parallel
// traces, so attach one auditor per run (ScenarioConfig::trace), not to a
// merged stream.

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "stats/trace.hpp"
#include "util/time.hpp"

namespace aquamac {

enum class InvariantKind : std::uint8_t {
  kExtraOverlap,
  kOffSlotStart,
  kAckSlotMismatch,
  kNeighborDelayDrift,
  kPacketRevisit,
  kHopCountExceedsRoute,
  kDuplicateSinkDelivery,
  kRetryExceedsBound,
};

[[nodiscard]] std::string_view to_string(InvariantKind kind);

class InvariantAuditor final : public TraceSink {
 public:
  struct Config {
    bool slotted{true};        ///< enables (b) and (c)
    Duration slot_length{};    ///< |ts| = omega + tau_max (§4.1)
    Duration omega{};          ///< control-packet airtime
    Duration tau_max{};        ///< MAC clamp bound for (d)
    Duration sync_tolerance{}; ///< allowed |recorded - true| delay error
    /// After a kFaultNodeUp the node is still re-learning its neighborhood;
    /// checks at that node are suppressed for this long (fault injection).
    Duration rejoin_grace{};
    /// Routing checks (e)/(f) are suppressed for this long after any
    /// kRouteUpdate: DV re-convergence legitimately produces transient
    /// loops and detours until the sequence wave flushes stale routes.
    Duration route_grace{};
    /// The scenario's ReliabilityConfig::max_retries; > 0 enables checks
    /// (g) and (h). Zero (ARQ off) disables them — without the relay
    /// dedup layer a post-outage MAC state reset can legitimately
    /// double-deliver, so the checks only bind when the contract exists.
    std::uint32_t custody_retry_bound{0};
    bool hard_fail{false};     ///< throw on the first violation
  };

  struct Violation {
    InvariantKind kind{InvariantKind::kExtraOverlap};
    Time at{};
    NodeId node{kNoNode};
    FrameType frame_type{FrameType::kHello};
    NodeId src{kNoNode};
    NodeId dst{kNoNode};
    std::uint64_t seq{0};
    std::string detail;
  };

  explicit InvariantAuditor(Config config) : config_{config} {}

  void record(const TraceEvent& event) override;

  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  /// Total individual invariant evaluations performed (a liveness check:
  /// zero violations out of zero checks proves nothing).
  [[nodiscard]] std::uint64_t checks() const { return checks_; }

 private:
  /// Transmissions keyed by (src, type, seq); a short ring of recent
  /// launches because retransmissions reuse the key.
  struct TxKey {
    NodeId src{kNoNode};
    std::uint8_t type{0};
    std::uint64_t seq{0};
    bool operator==(const TxKey&) const = default;
  };
  struct TxKeyHash {
    std::size_t operator()(const TxKey& k) const {
      std::uint64_t h = (static_cast<std::uint64_t>(k.src) << 8) | k.type;
      h ^= k.seq + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };
  struct TxRing {
    static constexpr std::size_t kSlots = 4;
    Time at[kSlots]{};
    std::size_t count{0};
    void push(Time t) { at[count++ % kSlots] = t; }
  };

  /// A decodable arrival window at one receiver.
  struct ArrivalWindow {
    TimeInterval iv{};
    FrameType type{FrameType::kHello};
    NodeId src{kNoNode};
    NodeId dst{kNoNode};
    std::uint64_t seq{0};
    Time tx_at{};  ///< matched launch time (window begin when unmatched)
  };

  /// (lo node, hi node, seq) of a negotiated exchange.
  struct ExchangeKey {
    NodeId lo{kNoNode};
    NodeId hi{kNoNode};
    std::uint64_t seq{0};
    bool operator==(const ExchangeKey&) const = default;
  };
  struct ExchangeKeyHash {
    std::size_t operator()(const ExchangeKey& k) const {
      std::uint64_t h = (static_cast<std::uint64_t>(k.lo) << 32) | k.hi;
      h ^= k.seq + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  struct NodeState {
    std::deque<ArrivalWindow> negotiated;  ///< addressed-to-this-node windows
    std::deque<ArrivalWindow> extras;      ///< extra-class windows (any dst)
    /// Recent RTS/CTS decode times per exchange (a ring, because MAC
    /// retransmissions reuse the key and check (a) needs the latest
    /// decode not after an extra's launch, not just the first ever).
    std::unordered_map<ExchangeKey, TxRing, ExchangeKeyHash> heard;
    /// Earliest successful reception from each sender: from then on this
    /// node has a measured delay to that sender (§4.3).
    std::unordered_map<NodeId, Time> knows_since;
    /// Last decodable arrival, pending its kNeighborUpdate for check (d).
    ArrivalWindow last_rx{};
    bool last_rx_valid{false};
    /// Expected Eq.-5 Ack slot keyed by the DATA's (sender, kData, seq):
    /// filled when the DATA arrives, consumed when this node launches the
    /// Ack.
    std::unordered_map<TxKey, std::int64_t, TxKeyHash> ack_slot_expect;
    /// Fault scoping: a down node is unhealthy, and a rejoined node stays
    /// unhealthy until the grace period ends (it is re-learning state the
    /// invariants presume).
    bool down{false};
    Time unhealthy_until{};
  };

  /// One relayed packet in flight, keyed by its e2e id.
  struct Flight {
    Time origin_at{};
    std::uint32_t advertised_hops{0};  ///< origin's route length (0 = unknown)
    std::vector<NodeId> visited;       ///< origin + every forwarder so far
  };

  void on_tx_start(const TraceEvent& event);
  void on_rx(const TraceEvent& event);
  void on_neighbor_update(const TraceEvent& event);
  void on_relay_originate(const TraceEvent& event);
  void on_relay_forward(const TraceEvent& event);
  void on_relay_arrive(const TraceEvent& event);
  void on_relay_retry(const TraceEvent& event);
  /// Whether the routing layer has been quiet for route_grace at `at`.
  [[nodiscard]] bool routes_settled(Time at) const;
  void prune_flights(Time now);
  /// Whether `node` is in a healthy interval at `at` (unknown nodes are).
  [[nodiscard]] bool healthy(NodeId node, Time at) const;
  void check_extra_overlap(NodeId node, const ArrivalWindow& added, bool added_is_extra);
  void add_violation(Violation violation);
  void prune(NodeId node, Time now);

  [[nodiscard]] std::int64_t slot_index(Time t) const {
    return (t - Time::zero()).divide_floor(config_.slot_length);
  }
  [[nodiscard]] Time slot_start(std::int64_t index) const {
    return Time::zero() + config_.slot_length * index;
  }
  /// Latest launch in the ring consistent with this arrival begin.
  [[nodiscard]] Time match_tx(const TxKey& key, Time arrival_begin) const;

  Config config_;
  std::unordered_map<TxKey, TxRing, TxKeyHash> tx_times_;
  /// Latest RTS launch per exchange. A handshake retry restarts the
  /// negotiated schedule, so check (a) holds an extra's sender only to
  /// predictions decodable from the *current* attempt: knowledge of an
  /// earlier, failed attempt predicts nothing about the retry's windows
  /// (the sender is a hidden terminal with respect to the retry).
  std::unordered_map<ExchangeKey, Time, ExchangeKeyHash> attempt_started_;
  std::unordered_map<NodeId, NodeState> node_states_;
  /// In-flight relayed packets for checks (e)/(f). Dropped packets never
  /// see their kRelayArrive, so the map is bounded by periodic pruning.
  std::unordered_map<std::uint64_t, Flight> flights_;
  /// First sink absorption per e2e id, for check (g); pruned alongside
  /// flights_ (a sink cannot re-absorb arbitrarily late — seen_ is
  /// permanent in the implementation, but a bounded horizon keeps the
  /// auditor O(in-flight)).
  struct Arrival {
    NodeId sink{kNoNode};
    Time at{};
  };
  std::unordered_map<std::uint64_t, Arrival> sink_arrivals_;
  /// Latest kRouteUpdate anywhere (network-wide churn marker).
  Time last_route_update_{};
  bool any_route_update_{false};
  std::vector<Violation> violations_;
  std::uint64_t checks_{0};
};

}  // namespace aquamac

#pragma once
// Run-level metrics derived from aggregated counters (Eqs. 2-4).

#include <cstdint>
#include <vector>

#include "stats/counters.hpp"
#include "util/time.hpp"

namespace aquamac {

class JsonWriter;

// lint: stats-class(emitted by write_run_stats_json, merged by mean_of)
struct RunStats {
  double elapsed_s{0.0};           ///< total simulated time
  double traffic_duration_s{0.0};  ///< window over which load was offered
  std::size_t node_count{0};

  std::uint64_t packets_offered{0};
  std::uint64_t packets_delivered{0};
  std::uint64_t packets_dropped{0};
  /// Retransmissions the receiver had already delivered (lost Acks);
  /// a high count flags an Ack path too lossy for the retry budget.
  std::uint64_t duplicate_deliveries{0};
  std::uint64_t bits_offered{0};
  std::uint64_t bits_delivered{0};

  /// Eq. (3): delivered bits per traffic second, in kbps.
  double throughput_kbps{0.0};
  double offered_load_kbps{0.0};
  /// Delivered / offered bits.
  double delivery_ratio{0.0};

  /// Total network energy in joules and mean per-node power in mW.
  double total_energy_j{0.0};
  double mean_power_mw{0.0};

  /// Overhead inputs (Fig. 10): control (RTS/CTS/Ack + extra control),
  /// maintenance (Hello/Maint), retransmission bits.
  std::uint64_t control_bits{0};
  std::uint64_t maintenance_bits{0};
  std::uint64_t retransmitted_bits{0};
  std::uint64_t piggyback_bits{0};
  std::uint64_t total_bits_sent{0};
  [[nodiscard]] double overhead_bits() const {
    return static_cast<double>(control_bits + maintenance_bits + retransmitted_bits +
                               piggyback_bits);
  }

  double mean_latency_s{0.0};
  /// Fig. 8: time from traffic start to the last successful delivery.
  double execution_time_s{0.0};

  std::uint64_t handshake_attempts{0};
  std::uint64_t handshake_successes{0};
  std::uint64_t contention_losses{0};
  std::uint64_t extra_attempts{0};
  std::uint64_t extra_successes{0};
  std::uint64_t rx_collisions{0};

  /// Eq. (4) numerator/denominator; the figure normalizes to S-FAMA.
  [[nodiscard]] double efficiency_raw() const {
    return mean_power_mw > 0.0 ? throughput_kbps / mean_power_mw : 0.0;
  }

  /// Jain's fairness index over per-source acked packets in [1/n, 1];
  /// the §3.1 rp priority exists to keep this high under contention.
  double fairness_index{0.0};

  // --- multi-hop mode (§3.1/Fig. 1); zero when disabled ----------------
  std::uint64_t e2e_originated{0};
  std::uint64_t e2e_arrived_at_sink{0};
  double e2e_delivery_ratio{0.0};
  double mean_hops{0.0};
  double mean_e2e_latency_s{0.0};
  // Routing-layer breakdown (docs/routing.md):
  std::uint64_t e2e_forwarded{0};
  std::uint64_t e2e_dropped_no_route{0};  ///< routing named no next hop
  std::uint64_t e2e_dropped_hop_limit{0};
  std::uint64_t e2e_dropped_mac{0};       ///< a hop exhausted MAC retries
  /// Realized hops / static-tree hops, over arrivals whose origin the
  /// tree can route (1.0 = shortest-delay paths; greedy/DV detours > 1).
  double hop_stretch{0.0};
  /// mean_e2e_latency_s / mean_hops: queueing+contention cost per hop.
  double mean_per_hop_latency_s{0.0};
  // Hop-by-hop reliability layer (docs/reliability.md); zero with the
  // ARQ off:
  std::uint64_t e2e_retransmissions{0};  ///< custody re-enqueues after backoff
  std::uint64_t e2e_failovers{0};        ///< retries sent via an alternate hop
  std::uint64_t e2e_dead_letter_exhausted{0};  ///< custody retry budget spent
  std::uint64_t e2e_dead_letter_overflow{0};   ///< relay queue overflow drops
  std::uint64_t e2e_dead_letter_no_route{0};   ///< no hop left at retry time
  std::uint64_t e2e_duplicates_suppressed{0};  ///< relay-level dedup hits
  std::uint64_t relay_queue_highwater{0};      ///< worst custody occupancy
};

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1.0 for empty or
/// all-zero input (all-equal shares are perfectly fair).
[[nodiscard]] double jain_fairness(const std::vector<double>& values);

/// Folds summed per-node counters + energy into a RunStats.
[[nodiscard]] RunStats compute_run_stats(const MacCounters& total, double total_energy_j,
                                         std::size_t node_count, Duration elapsed,
                                         Duration traffic_duration, Time traffic_start);

/// Emits every RunStats field (plus the derived overhead/efficiency
/// metrics) as one JSON object; the field-coverage contract is enforced
/// by aquamac-lint's stats-symmetric rule.
void write_run_stats_json(JsonWriter& json, const RunStats& stats);

}  // namespace aquamac

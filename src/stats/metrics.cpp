#include "stats/metrics.hpp"

#include "util/json_writer.hpp"

namespace aquamac {

double jain_fairness(const std::vector<double>& values) {
  // All-equal inputs (including all-zero, and vacuously the empty set)
  // score 1.0: an idle scenario is perfectly fair, not maximally unfair.
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

RunStats compute_run_stats(const MacCounters& total, double total_energy_j,
                           std::size_t node_count, Duration elapsed,
                           Duration traffic_duration, Time traffic_start) {
  RunStats stats{};
  stats.elapsed_s = elapsed.to_seconds();
  stats.traffic_duration_s = traffic_duration.to_seconds();
  stats.node_count = node_count;

  stats.packets_offered = total.packets_offered;
  stats.packets_delivered = total.packets_delivered;
  stats.packets_dropped = total.packets_dropped;
  stats.duplicate_deliveries = total.duplicate_deliveries;
  stats.bits_offered = total.bits_offered;
  stats.bits_delivered = total.bits_delivered;

  if (stats.traffic_duration_s > 0.0) {
    stats.throughput_kbps =
        static_cast<double>(total.bits_delivered) / stats.traffic_duration_s / 1'000.0;
    stats.offered_load_kbps =
        static_cast<double>(total.bits_offered) / stats.traffic_duration_s / 1'000.0;
  }
  if (total.bits_offered > 0) {
    stats.delivery_ratio =
        static_cast<double>(total.bits_delivered) / static_cast<double>(total.bits_offered);
  }

  stats.total_energy_j = total_energy_j;
  if (node_count > 0 && stats.elapsed_s > 0.0) {
    stats.mean_power_mw =
        total_energy_j / stats.elapsed_s / static_cast<double>(node_count) * 1'000.0;
  }

  stats.control_bits = total.control_bits_sent();
  stats.maintenance_bits = total.maintenance_bits_sent();
  stats.retransmitted_bits = total.retransmitted_bits;
  stats.piggyback_bits = total.piggyback_info_bits;
  stats.total_bits_sent = total.total_bits_sent();

  if (total.latency_samples > 0) {
    stats.mean_latency_s = total.total_delivery_latency.to_seconds() /
                           static_cast<double>(total.latency_samples);
  }
  if (total.last_delivery_time > traffic_start) {
    stats.execution_time_s = (total.last_delivery_time - traffic_start).to_seconds();
  }

  stats.handshake_attempts = total.handshake_attempts;
  stats.handshake_successes = total.handshake_successes;
  stats.contention_losses = total.contention_losses;
  stats.extra_attempts = total.extra_attempts;
  stats.extra_successes = total.extra_successes;
  stats.rx_collisions = total.rx_collisions;
  return stats;
}

// lint: stats-site(RunStats)
void write_run_stats_json(JsonWriter& json, const RunStats& stats) {
  json.begin_object();
  json.key("elapsed_s").value(stats.elapsed_s);
  json.key("traffic_duration_s").value(stats.traffic_duration_s);
  json.key("node_count").value(static_cast<std::uint64_t>(stats.node_count));
  json.key("packets_offered").value(stats.packets_offered);
  json.key("packets_delivered").value(stats.packets_delivered);
  json.key("packets_dropped").value(stats.packets_dropped);
  json.key("duplicate_deliveries").value(stats.duplicate_deliveries);
  json.key("bits_offered").value(stats.bits_offered);
  json.key("bits_delivered").value(stats.bits_delivered);
  json.key("throughput_kbps").value(stats.throughput_kbps);
  json.key("offered_load_kbps").value(stats.offered_load_kbps);
  json.key("delivery_ratio").value(stats.delivery_ratio);
  json.key("total_energy_j").value(stats.total_energy_j);
  json.key("mean_power_mw").value(stats.mean_power_mw);
  json.key("control_bits").value(stats.control_bits);
  json.key("maintenance_bits").value(stats.maintenance_bits);
  json.key("retransmitted_bits").value(stats.retransmitted_bits);
  json.key("piggyback_bits").value(stats.piggyback_bits);
  json.key("total_bits_sent").value(stats.total_bits_sent);
  json.key("overhead_bits").value(stats.overhead_bits());
  json.key("mean_latency_s").value(stats.mean_latency_s);
  json.key("execution_time_s").value(stats.execution_time_s);
  json.key("handshake_attempts").value(stats.handshake_attempts);
  json.key("handshake_successes").value(stats.handshake_successes);
  json.key("contention_losses").value(stats.contention_losses);
  json.key("extra_attempts").value(stats.extra_attempts);
  json.key("extra_successes").value(stats.extra_successes);
  json.key("rx_collisions").value(stats.rx_collisions);
  json.key("efficiency_raw").value(stats.efficiency_raw());
  json.key("fairness_index").value(stats.fairness_index);
  json.key("e2e_originated").value(stats.e2e_originated);
  json.key("e2e_arrived_at_sink").value(stats.e2e_arrived_at_sink);
  json.key("e2e_delivery_ratio").value(stats.e2e_delivery_ratio);
  json.key("mean_hops").value(stats.mean_hops);
  json.key("mean_e2e_latency_s").value(stats.mean_e2e_latency_s);
  json.key("e2e_forwarded").value(stats.e2e_forwarded);
  json.key("e2e_dropped_no_route").value(stats.e2e_dropped_no_route);
  json.key("e2e_dropped_hop_limit").value(stats.e2e_dropped_hop_limit);
  json.key("e2e_dropped_mac").value(stats.e2e_dropped_mac);
  json.key("hop_stretch").value(stats.hop_stretch);
  json.key("mean_per_hop_latency_s").value(stats.mean_per_hop_latency_s);
  json.key("e2e_retransmissions").value(stats.e2e_retransmissions);
  json.key("e2e_failovers").value(stats.e2e_failovers);
  json.key("e2e_dead_letter_exhausted").value(stats.e2e_dead_letter_exhausted);
  json.key("e2e_dead_letter_overflow").value(stats.e2e_dead_letter_overflow);
  json.key("e2e_dead_letter_no_route").value(stats.e2e_dead_letter_no_route);
  json.key("e2e_duplicates_suppressed").value(stats.e2e_duplicates_suppressed);
  json.key("relay_queue_highwater").value(stats.relay_queue_highwater);
  json.end_object();
}

}  // namespace aquamac

#include "stats/metrics.hpp"

namespace aquamac {

double jain_fairness(const std::vector<double>& values) {
  // All-equal inputs (including all-zero, and vacuously the empty set)
  // score 1.0: an idle scenario is perfectly fair, not maximally unfair.
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

RunStats compute_run_stats(const MacCounters& total, double total_energy_j,
                           std::size_t node_count, Duration elapsed,
                           Duration traffic_duration, Time traffic_start) {
  RunStats stats{};
  stats.elapsed_s = elapsed.to_seconds();
  stats.traffic_duration_s = traffic_duration.to_seconds();
  stats.node_count = node_count;

  stats.packets_offered = total.packets_offered;
  stats.packets_delivered = total.packets_delivered;
  stats.packets_dropped = total.packets_dropped;
  stats.bits_offered = total.bits_offered;
  stats.bits_delivered = total.bits_delivered;

  if (stats.traffic_duration_s > 0.0) {
    stats.throughput_kbps =
        static_cast<double>(total.bits_delivered) / stats.traffic_duration_s / 1'000.0;
    stats.offered_load_kbps =
        static_cast<double>(total.bits_offered) / stats.traffic_duration_s / 1'000.0;
  }
  if (total.bits_offered > 0) {
    stats.delivery_ratio =
        static_cast<double>(total.bits_delivered) / static_cast<double>(total.bits_offered);
  }

  stats.total_energy_j = total_energy_j;
  if (node_count > 0 && stats.elapsed_s > 0.0) {
    stats.mean_power_mw =
        total_energy_j / stats.elapsed_s / static_cast<double>(node_count) * 1'000.0;
  }

  stats.control_bits = total.control_bits_sent();
  stats.maintenance_bits = total.maintenance_bits_sent();
  stats.retransmitted_bits = total.retransmitted_bits;
  stats.piggyback_bits = total.piggyback_info_bits;
  stats.total_bits_sent = total.total_bits_sent();

  if (total.latency_samples > 0) {
    stats.mean_latency_s = total.total_delivery_latency.to_seconds() /
                           static_cast<double>(total.latency_samples);
  }
  if (total.last_delivery_time > traffic_start) {
    stats.execution_time_s = (total.last_delivery_time - traffic_start).to_seconds();
  }

  stats.handshake_attempts = total.handshake_attempts;
  stats.handshake_successes = total.handshake_successes;
  stats.contention_losses = total.contention_losses;
  stats.extra_attempts = total.extra_attempts;
  stats.extra_successes = total.extra_successes;
  stats.rx_collisions = total.rx_collisions;
  return stats;
}

}  // namespace aquamac

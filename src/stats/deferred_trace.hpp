#pragma once
// Trace sink adapter for the sharded engine.
//
// Modems and MACs record trace events while their shard executes inside a
// conservative window, where the underlying sink (a MemoryTrace or
// HashTrace shared by the whole run) would be written from several
// threads at once. This adapter routes each record() through
// Simulator::defer_ordered when called from a parallel region, so the
// inner sink receives the events at the window barrier in exact serial
// key order — the digest a HashTrace accumulates is bit-identical to the
// serial engine's. Outside parallel regions (serial engine, coordinator
// global batches) it calls straight through.

#include "sim/simulator.hpp"
#include "stats/trace.hpp"

namespace aquamac {

class DeferredTraceSink final : public TraceSink {
 public:
  DeferredTraceSink(Simulator& sim, TraceSink& inner) : sim_{sim}, inner_{&inner} {}

  void record(const TraceEvent& event) override {
    if (sim_.in_parallel_region()) {
      TraceSink* inner = inner_;
      sim_.defer_ordered([inner, event] { inner->record(event); });
    } else {
      inner_->record(event);
    }
  }

 private:
  Simulator& sim_;
  TraceSink* inner_;
};

}  // namespace aquamac

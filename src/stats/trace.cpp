#include "stats/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace aquamac {

std::string_view to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kTxStart: return "TX";
    case TraceEventKind::kRxOk: return "RX";
    case TraceEventKind::kRxLost: return "LOST";
  }
  return "?";
}

std::string TraceEvent::to_csv_row() const {
  std::ostringstream os;
  os << at.count_ns() << ',' << to_string(kind) << ',' << node << ','
     << aquamac::to_string(frame_type) << ',' << src << ',' << dst << ',' << seq << ','
     << bits;
  if (kind == TraceEventKind::kRxLost) {
    switch (outcome) {
      case RxOutcome::kCollision: os << ",collision"; break;
      case RxOutcome::kHalfDuplexLoss: os << ",half-duplex"; break;
      case RxOutcome::kChannelError: os << ",channel-error"; break;
      case RxOutcome::kBelowThreshold: os << ",below-threshold"; break;
      case RxOutcome::kSuccess: os << ",?"; break;
    }
  } else {
    os << ",";
  }
  return os.str();
}

std::size_t MemoryTrace::count(TraceEventKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const TraceEvent& e) { return e.kind == kind; }));
}

std::size_t MemoryTrace::count_frames(FrameType type) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [type](const TraceEvent& e) { return e.frame_type == type; }));
}

bool MemoryTrace::is_time_ordered() const {
  for (std::size_t i = 1; i < events_.size(); ++i) {
    if (events_[i].at < events_[i - 1].at) return false;
  }
  return true;
}

CsvTrace::CsvTrace(std::ostream& os) : os_{os} {
  os_ << "t_ns,event,node,frame,src,dst,seq,bits,loss\n";
}

void CsvTrace::record(const TraceEvent& event) { os_ << event.to_csv_row() << '\n'; }

void HashTrace::mix(std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash_ ^= (value >> (byte * 8)) & 0xFF;
    hash_ *= 1099511628211ULL;
  }
}

void HashTrace::record(const TraceEvent& event) {
  mix(static_cast<std::uint64_t>(event.at.count_ns()));
  mix(static_cast<std::uint64_t>(event.kind));
  mix(event.node);
  mix(static_cast<std::uint64_t>(event.frame_type));
  mix(event.src);
  mix(event.dst);
  mix(event.seq);
  mix(event.bits);
  mix(static_cast<std::uint64_t>(event.outcome));
}

}  // namespace aquamac

#include "stats/trace.hpp"

#include <algorithm>
#include <bit>
#include <ostream>
#include <sstream>

namespace aquamac {

// lint: trace-dispatch(TraceEventKind)
// Plot-facing serialization: every kind must map to a stable mnemonic
// (plot_results.py and the CSV schema key on these strings).
std::string_view to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kTxStart: return "TX";
    case TraceEventKind::kRxOk: return "RX";
    case TraceEventKind::kRxLost: return "LOST";
    case TraceEventKind::kMacState: return "STATE";
    case TraceEventKind::kSlotBoundary: return "SLOT";
    case TraceEventKind::kContentionWin: return "WIN";
    case TraceEventKind::kContentionLoss: return "LOSE";
    case TraceEventKind::kExtraNegotiated: return "EXNEG";
    case TraceEventKind::kExtraScheduled: return "EXPLAN";
    case TraceEventKind::kNeighborUpdate: return "NBR";
    case TraceEventKind::kFaultNodeDown: return "DOWN";
    case TraceEventKind::kFaultNodeUp: return "UP";
    case TraceEventKind::kFaultClockStep: return "CLKSTEP";
    case TraceEventKind::kFaultBurstBegin: return "BURST+";
    case TraceEventKind::kFaultBurstEnd: return "BURST-";
    case TraceEventKind::kFaultStormBegin: return "STORM+";
    case TraceEventKind::kFaultStormEnd: return "STORM-";
    case TraceEventKind::kNeighborEvicted: return "EVICT";
    case TraceEventKind::kNeighborDead: return "NBRDEAD";
    case TraceEventKind::kNeighborProbe: return "PROBE";
    case TraceEventKind::kRouteUpdate: return "ROUTE";
    case TraceEventKind::kRelayOriginate: return "RELAYSRC";
    case TraceEventKind::kRelayForward: return "RELAYFWD";
    case TraceEventKind::kRelayArrive: return "RELAYDST";
    case TraceEventKind::kRelayRetry: return "RELAYRETRY";
    case TraceEventKind::kRelayRequeue: return "RELAYREQUEUE";
    case TraceEventKind::kRelayDeadLetter: return "RELAYDEADLETTER";
  }
  return "?";
}

std::string TraceEvent::to_csv_row() const {
  std::ostringstream os;
  os << at.count_ns() << ',' << to_string(kind) << ',' << node << ','
     << aquamac::to_string(frame_type) << ',' << src << ',' << dst << ',' << seq << ','
     << bits;
  if (kind == TraceEventKind::kRxLost) {
    switch (outcome) {
      case RxOutcome::kCollision: os << ",collision"; break;
      case RxOutcome::kHalfDuplexLoss: os << ",half-duplex"; break;
      case RxOutcome::kChannelError: os << ",channel-error"; break;
      case RxOutcome::kBelowThreshold: os << ",below-threshold"; break;
      case RxOutcome::kSuccess: os << ",?"; break;
    }
  } else {
    os << ",";
  }
  os << ',' << window_begin.count_ns() << ',' << window_end.count_ns() << ',' << a << ','
     << b << ',' << value;
  return os.str();
}

std::size_t MemoryTrace::count(TraceEventKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const TraceEvent& e) { return e.kind == kind; }));
}

std::size_t MemoryTrace::count_frames(FrameType type) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [type](const TraceEvent& e) { return e.frame_type == type; }));
}

bool MemoryTrace::is_time_ordered() const {
  for (std::size_t i = 1; i < events_.size(); ++i) {
    if (events_[i].at < events_[i - 1].at) return false;
  }
  return true;
}

CsvTrace::CsvTrace(std::ostream& os) : os_{os} {
  os_ << "t_ns,event,node,frame,src,dst,seq,bits,loss,win_begin_ns,win_end_ns,a,b,value\n";
}

void CsvTrace::record(const TraceEvent& event) { os_ << event.to_csv_row() << '\n'; }

void HashTrace::mix(std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash_ ^= (value >> (byte * 8)) & 0xFF;
    hash_ *= 1099511628211ULL;
  }
}

void HashTrace::record(const TraceEvent& event) {
  mix(static_cast<std::uint64_t>(event.at.count_ns()));
  mix(static_cast<std::uint64_t>(event.kind));
  mix(event.node);
  mix(static_cast<std::uint64_t>(event.frame_type));
  mix(event.src);
  mix(event.dst);
  mix(event.seq);
  mix(event.bits);
  mix(static_cast<std::uint64_t>(event.outcome));
  mix(static_cast<std::uint64_t>(event.window_begin.count_ns()));
  mix(static_cast<std::uint64_t>(event.window_end.count_ns()));
  mix(static_cast<std::uint64_t>(event.a));
  mix(static_cast<std::uint64_t>(event.b));
  mix(std::bit_cast<std::uint64_t>(event.value));
}

TraceSinkFactory memory_trace_factory() {
  return [](std::size_t /*run_index*/) { return std::make_unique<MemoryTrace>(); };
}

void merge_traces(const std::vector<std::unique_ptr<MemoryTrace>>& runs, TraceSink& out) {
  struct Key {
    Time at;
    std::size_t run;
    std::size_t idx;
  };
  std::vector<Key> keys;
  std::size_t total = 0;
  for (const auto& run : runs) {
    if (run != nullptr) total += run->size();
  }
  keys.reserve(total);
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (runs[r] == nullptr) continue;
    const auto& events = runs[r]->events();
    for (std::size_t i = 0; i < events.size(); ++i) keys.push_back(Key{events[i].at, r, i});
  }
  std::sort(keys.begin(), keys.end(), [](const Key& x, const Key& y) {
    if (x.at != y.at) return x.at < y.at;
    if (x.run != y.run) return x.run < y.run;
    return x.idx < y.idx;
  });
  for (const Key& key : keys) out.record(runs[key.run]->events()[key.idx]);
}

}  // namespace aquamac

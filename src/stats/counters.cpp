#include "stats/counters.hpp"

#include <algorithm>

namespace aquamac {

std::uint64_t MacCounters::control_bits_sent() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < kFrameTypeCount; ++i) {
    const auto type = static_cast<FrameType>(i);
    if (is_control(type) && type != FrameType::kMaint && type != FrameType::kHello) {
      sum += bits_sent[i];
    }
  }
  return sum;
}

MacCounters& MacCounters::operator+=(const MacCounters& o) {
  for (std::size_t i = 0; i < kFrameTypeCount; ++i) {
    frames_sent[i] += o.frames_sent[i];
    bits_sent[i] += o.bits_sent[i];
    frames_received[i] += o.frames_received[i];
  }
  retransmitted_frames += o.retransmitted_frames;
  retransmitted_bits += o.retransmitted_bits;
  piggyback_info_bits += o.piggyback_info_bits;
  rx_collisions += o.rx_collisions;
  packets_offered += o.packets_offered;
  bits_offered += o.bits_offered;
  packets_delivered += o.packets_delivered;
  bits_delivered += o.bits_delivered;
  packets_sent_ok += o.packets_sent_ok;
  packets_dropped += o.packets_dropped;
  duplicate_deliveries += o.duplicate_deliveries;
  handshake_attempts += o.handshake_attempts;
  handshake_successes += o.handshake_successes;
  contention_losses += o.contention_losses;
  extra_attempts += o.extra_attempts;
  extra_successes += o.extra_successes;
  total_delivery_latency += o.total_delivery_latency;
  latency_samples += o.latency_samples;
  last_delivery_time = std::max(last_delivery_time, o.last_delivery_time);
  return *this;
}

}  // namespace aquamac

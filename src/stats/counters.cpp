#include "stats/counters.hpp"

#include <algorithm>

#include "sim/checkpoint.hpp"

namespace aquamac {

std::uint64_t MacCounters::control_bits_sent() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < kFrameTypeCount; ++i) {
    const auto type = static_cast<FrameType>(i);
    if (is_control(type) && type != FrameType::kMaint && type != FrameType::kHello) {
      sum += bits_sent[i];
    }
  }
  return sum;
}

// lint: stats-site(MacCounters)
MacCounters& MacCounters::operator+=(const MacCounters& o) {
  for (std::size_t i = 0; i < kFrameTypeCount; ++i) {
    frames_sent[i] += o.frames_sent[i];
    bits_sent[i] += o.bits_sent[i];
    frames_received[i] += o.frames_received[i];
  }
  retransmitted_frames += o.retransmitted_frames;
  retransmitted_bits += o.retransmitted_bits;
  piggyback_info_bits += o.piggyback_info_bits;
  rx_collisions += o.rx_collisions;
  packets_offered += o.packets_offered;
  bits_offered += o.bits_offered;
  packets_delivered += o.packets_delivered;
  bits_delivered += o.bits_delivered;
  packets_sent_ok += o.packets_sent_ok;
  packets_dropped += o.packets_dropped;
  duplicate_deliveries += o.duplicate_deliveries;
  handshake_attempts += o.handshake_attempts;
  handshake_successes += o.handshake_successes;
  contention_losses += o.contention_losses;
  extra_attempts += o.extra_attempts;
  extra_successes += o.extra_successes;
  total_delivery_latency += o.total_delivery_latency;
  latency_samples += o.latency_samples;
  last_delivery_time = std::max(last_delivery_time, o.last_delivery_time);
  return *this;
}

// lint: stats-site(MacCounters)
void MacCounters::save_state(StateWriter& writer) const {
  for (std::size_t i = 0; i < kFrameTypeCount; ++i) {
    writer.write_u64(frames_sent[i]);
    writer.write_u64(bits_sent[i]);
    writer.write_u64(frames_received[i]);
  }
  writer.write_u64(retransmitted_frames);
  writer.write_u64(retransmitted_bits);
  writer.write_u64(piggyback_info_bits);
  writer.write_u64(rx_collisions);
  writer.write_u64(packets_offered);
  writer.write_u64(bits_offered);
  writer.write_u64(packets_delivered);
  writer.write_u64(bits_delivered);
  writer.write_u64(packets_sent_ok);
  writer.write_u64(packets_dropped);
  writer.write_u64(duplicate_deliveries);
  writer.write_u64(handshake_attempts);
  writer.write_u64(handshake_successes);
  writer.write_u64(contention_losses);
  writer.write_u64(extra_attempts);
  writer.write_u64(extra_successes);
  writer.write_duration(total_delivery_latency);
  writer.write_u64(latency_samples);
  writer.write_time(last_delivery_time);
}

void MacCounters::restore_state(StateReader& reader) {
  for (std::size_t i = 0; i < kFrameTypeCount; ++i) {
    frames_sent[i] = reader.read_u64();
    bits_sent[i] = reader.read_u64();
    frames_received[i] = reader.read_u64();
  }
  retransmitted_frames = reader.read_u64();
  retransmitted_bits = reader.read_u64();
  piggyback_info_bits = reader.read_u64();
  rx_collisions = reader.read_u64();
  packets_offered = reader.read_u64();
  bits_offered = reader.read_u64();
  packets_delivered = reader.read_u64();
  bits_delivered = reader.read_u64();
  packets_sent_ok = reader.read_u64();
  packets_dropped = reader.read_u64();
  duplicate_deliveries = reader.read_u64();
  handshake_attempts = reader.read_u64();
  handshake_successes = reader.read_u64();
  contention_losses = reader.read_u64();
  extra_attempts = reader.read_u64();
  extra_successes = reader.read_u64();
  total_delivery_latency = reader.read_duration();
  latency_samples = reader.read_u64();
  last_delivery_time = reader.read_time();
}

}  // namespace aquamac

#include "stats/analysis.hpp"

#include <algorithm>
#include <sstream>

namespace aquamac {

namespace {

Duration airtime_of(const TraceEvent& event, double bit_rate_bps) {
  return Duration::from_seconds(static_cast<double>(event.bits) / bit_rate_bps);
}

}  // namespace

UtilizationReport channel_utilization(const MemoryTrace& trace, TimeInterval span,
                                      double bit_rate_bps) {
  UtilizationReport report{};
  std::vector<TimeInterval> windows;
  for (const TraceEvent& event : trace.events()) {
    if (event.kind != TraceEventKind::kTxStart) continue;
    const TimeInterval window{event.at, event.at + airtime_of(event, bit_rate_bps)};
    if (!window.overlaps(span)) continue;
    windows.push_back(TimeInterval{std::max(window.begin, span.begin),
                                   std::min(window.end, span.end)});
    report.total_airtime += windows.back().length();
    report.transmissions += 1;
  }
  std::sort(windows.begin(), windows.end(),
            [](const TimeInterval& a, const TimeInterval& b) { return a.begin < b.begin; });
  Time cursor = span.begin;
  for (const TimeInterval& w : windows) {
    const Time from = std::max(w.begin, cursor);
    if (w.end > from) {
      report.busy_time += w.end - from;
      cursor = w.end;
    }
  }
  const double span_s = span.length().to_seconds();
  if (span_s > 0.0) report.busy_fraction = report.busy_time.to_seconds() / span_s;
  return report;
}

AirtimeBreakdown airtime_breakdown(const MemoryTrace& trace, double bit_rate_bps) {
  double data_s = 0.0;
  double control_s = 0.0;
  double discovery_s = 0.0;
  for (const TraceEvent& event : trace.events()) {
    if (event.kind != TraceEventKind::kTxStart) continue;
    const double airtime = airtime_of(event, bit_rate_bps).to_seconds();
    switch (event.frame_type) {
      case FrameType::kData:
      case FrameType::kExData:
        data_s += airtime;
        break;
      case FrameType::kHello:
      case FrameType::kMaint:
        discovery_s += airtime;
        break;
      default:
        control_s += airtime;
        break;
    }
  }
  const double total = data_s + control_s + discovery_s;
  if (total <= 0.0) return {};
  return AirtimeBreakdown{data_s / total, control_s / total, discovery_s / total};
}

LossReport loss_report(const MemoryTrace& trace) {
  LossReport report{};
  for (const TraceEvent& event : trace.events()) {
    if (event.kind == TraceEventKind::kRxOk) {
      report.receptions_ok += 1;
    } else if (event.kind == TraceEventKind::kRxLost) {
      switch (event.outcome) {
        case RxOutcome::kCollision: report.collisions += 1; break;
        case RxOutcome::kHalfDuplexLoss: report.half_duplex += 1; break;
        case RxOutcome::kChannelError: report.channel_errors += 1; break;
        default: break;
      }
    }
  }
  return report;
}

std::map<NodeId, NodeActivity> node_activity(const MemoryTrace& trace) {
  std::map<NodeId, NodeActivity> activity;
  for (const TraceEvent& event : trace.events()) {
    NodeActivity& node = activity[event.node];
    switch (event.kind) {
      case TraceEventKind::kTxStart: node.frames_sent += 1; break;
      case TraceEventKind::kRxOk: node.frames_received += 1; break;
      case TraceEventKind::kRxLost: node.losses_seen += 1; break;
      default: break;  // MAC-layer events are not per-frame activity
    }
  }
  return activity;
}

HandshakeReport reconstruct_handshakes(const MemoryTrace& trace) {
  HandshakeReport report{};
  struct Key {
    NodeId initiator;
    NodeId responder;
    std::uint64_t seq;
    auto operator<=>(const Key&) const = default;
  };
  enum class Stage { kRtsSent, kCtsSeen, kDataSeen };
  struct State {
    Stage stage;
    Time started;
  };
  std::map<Key, State> open;

  for (const TraceEvent& event : trace.events()) {
    if (event.kind == TraceEventKind::kTxStart && event.frame_type == FrameType::kRts) {
      report.rts_sent += 1;
      open[Key{event.src, event.dst, event.seq}] = State{Stage::kRtsSent, event.at};
      continue;
    }
    // Progress is marked on *receptions at the intended party*.
    if (event.kind != TraceEventKind::kRxOk || event.node != event.dst) continue;
    switch (event.frame_type) {
      case FrameType::kCts: {
        const auto it = open.find(Key{event.dst, event.src, event.seq});
        if (it != open.end() && it->second.stage == Stage::kRtsSent) {
          it->second.stage = Stage::kCtsSeen;
        }
        break;
      }
      case FrameType::kData: {
        const auto it = open.find(Key{event.src, event.dst, event.seq});
        if (it != open.end() && it->second.stage == Stage::kCtsSeen) {
          it->second.stage = Stage::kDataSeen;
        }
        break;
      }
      case FrameType::kAck: {
        const auto it = open.find(Key{event.dst, event.src, event.seq});
        if (it != open.end() && it->second.stage == Stage::kDataSeen) {
          report.completed += 1;
          report.mean_duration += event.at - it->second.started;
          report.durations_s.add((event.at - it->second.started).to_seconds());
          open.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }
  if (report.rts_sent > 0) {
    report.completion_ratio =
        static_cast<double>(report.completed) / static_cast<double>(report.rts_sent);
  }
  if (report.completed > 0) {
    report.mean_duration = Duration::nanoseconds(report.mean_duration.count_ns() /
                                                 static_cast<std::int64_t>(report.completed));
  }
  return report;
}

std::string analysis_report(const MemoryTrace& trace, TimeInterval span,
                            double bit_rate_bps) {
  std::ostringstream os;
  const UtilizationReport util = channel_utilization(trace, span, bit_rate_bps);
  os << "Channel utilization\n"
     << "  transmissions      " << util.transmissions << "\n"
     << "  busy fraction      " << util.busy_fraction << "\n"
     << "  radiated airtime   " << util.total_airtime.to_seconds() << " s\n";

  const AirtimeBreakdown breakdown = airtime_breakdown(trace, bit_rate_bps);
  os << "Airtime shares\n"
     << "  data               " << breakdown.data << "\n"
     << "  control            " << breakdown.control << "\n"
     << "  discovery          " << breakdown.discovery << "\n";

  const LossReport losses = loss_report(trace);
  os << "Receptions\n"
     << "  ok                 " << losses.receptions_ok << "\n"
     << "  collisions         " << losses.collisions << "\n"
     << "  half-duplex        " << losses.half_duplex << "\n"
     << "  channel errors     " << losses.channel_errors << "\n"
     << "  loss ratio         " << losses.loss_ratio() << "\n";

  const HandshakeReport handshakes = reconstruct_handshakes(trace);
  os << "Handshakes (RTS..ACK chains)\n"
     << "  RTS sent           " << handshakes.rts_sent << "\n"
     << "  completed          " << handshakes.completed << "\n"
     << "  completion ratio   " << handshakes.completion_ratio << "\n"
     << "  mean duration      " << handshakes.mean_duration.to_seconds() << " s\n";
  if (!handshakes.durations_s.empty()) {
    os << "  p50 / p95          " << handshakes.durations_s.percentile(50.0) << " / "
       << handshakes.durations_s.percentile(95.0) << " s\n";
  }
  return os.str();
}

}  // namespace aquamac

#include "channel/acoustic_channel.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>

namespace aquamac {

AcousticChannel::AcousticChannel(Simulator& sim, const PropagationModel& propagation,
                                 ChannelConfig config)
    : sim_{sim},
      propagation_{propagation},
      config_{config},
      noise_level_db_{aquamac::noise_level_db(config.freq_khz, config.bandwidth_hz,
                                              config.noise)},
      path_cache_{propagation, config.freq_khz, config.enable_surface_echo} {
  if (config_.interference_range_m < config_.comm_range_m) {
    throw std::invalid_argument("interference_range_m must be >= comm_range_m");
  }
}

void AcousticChannel::attach(AcousticModem& modem) {
  for (const AcousticModem* existing : modems_) {
    if (existing == &modem || existing->id() == modem.id()) {
      throw std::logic_error("modem attached twice / duplicate id");
    }
  }
  modems_.push_back(&modem);
  modem.set_channel(this);
  if (config_.cache_paths) path_cache_.ensure_capacity(modem.id());
}

void AcousticChannel::start_transmission(const AcousticModem& sender, const Frame& frame,
                                         Duration airtime) {
  ++transmissions_;
  const Time now = sim_.now();
  TransmissionAudit audit{};
  const bool auditing = static_cast<bool>(audit_);
  if (auditing) {
    audit.sender = sender.id();
    audit.frame = frame;
    audit.tx_window = TimeInterval{now, now + airtime};
  }

  // One immutable copy of the frame shared by every per-receiver arrival
  // lambda (previously each lambda carried its own Frame copy).
  const auto shared_frame = std::make_shared<const Frame>(frame);

  for (AcousticModem* receiver : modems_) {
    if (receiver == &sender) continue;

    const PropagationModel::Path path =
        config_.cache_paths
            ? path_cache_.direct(sender, *receiver)
            : propagation_.compute(sender.position(), receiver->position(),
                                   config_.freq_khz);
    const double rx_level = config_.source_level_db - path.loss_db;

    bool reaches = false;
    bool decodable = false;
    double threshold = config_.detection_threshold_db;
    switch (config_.mode) {
      case DeliveryMode::kRangeBased:
        reaches = path.length_m <= config_.interference_range_m;
        decodable = path.length_m <= config_.comm_range_m;
        // Encode decodability as a threshold the reception model applies:
        // in-range arrivals always clear it; out-of-range never do.
        threshold = decodable ? -1e9 : 1e9;
        break;
      case DeliveryMode::kLevelBased:
        reaches = rx_level >= config_.interference_floor_db;
        decodable = rx_level >= config_.detection_threshold_db;
        break;
    }
    if (!reaches) continue;

    const TimeInterval window{now + path.delay, now + path.delay + airtime};
    if (auditing) {
      audit.reaches.push_back({receiver->id(), window, rx_level, decodable});
    }
    sim_.at(window.begin, [receiver, shared_frame, rx_level, window,
                           noise = noise_level_db_, threshold] {
      receiver->begin_arrival(*shared_frame, rx_level, window, noise, threshold);
    });

    // First-order surface echo (SINR physics only): a delayed, attenuated
    // replica that interferes but is never decodable.
    if (config_.enable_surface_echo && config_.mode == DeliveryMode::kLevelBased) {
      const PropagationModel::Path echo =
          config_.cache_paths
              ? path_cache_.surface_echo(sender, *receiver,
                                         config_.surface_reflection_loss_db)
              : surface_echo_path(propagation_, sender.position(), receiver->position(),
                                  config_.freq_khz, config_.surface_reflection_loss_db);
      const double echo_level = config_.source_level_db - echo.loss_db;
      if (echo_level >= config_.interference_floor_db && echo.delay > path.delay) {
        const TimeInterval echo_window{now + echo.delay, now + echo.delay + airtime};
        sim_.at(echo_window.begin, [receiver, shared_frame, echo_level, echo_window,
                                    noise = noise_level_db_] {
          receiver->begin_arrival(*shared_frame, echo_level, echo_window, noise,
                                  /*detection_threshold_db=*/1e9);
        });
      }
    }
  }

  if (auditing) audit_(audit);
}

}  // namespace aquamac

#include "channel/acoustic_channel.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>

#include "channel/absorption.hpp"

namespace aquamac {

namespace {

double effective_floor_for(const ChannelConfig& config, double noise_level_db) {
  return std::max(config.interference_floor_db,
                  noise_level_db - kNegligibleInterferenceMarginDb);
}

/// Max distance at which any attached modem can still register as
/// interference. kRangeBased bounds reach by configured range; kLevelBased
/// by inverting the link budget at the effective floor. Propagation path
/// length is >= the Euclidean chord (bellhop arcs bow outward), and TL is
/// monotone in length, so a Euclidean radius from the straight-line budget
/// conservatively covers curved-path reach too.
double interference_cutoff_for(const ChannelConfig& config, double effective_floor_db) {
  switch (config.mode) {
    case DeliveryMode::kRangeBased:
      return config.interference_range_m;
    case DeliveryMode::kLevelBased:
      return max_range_for_loss_db(config.source_level_db - effective_floor_db,
                                   config.freq_khz, config.spreading);
  }
  return config.interference_range_m;
}

}  // namespace

AcousticChannel::AcousticChannel(Simulator& sim, const PropagationModel& propagation,
                                 ChannelConfig config)
    : sim_{sim},
      propagation_{propagation},
      config_{config},
      noise_level_db_{aquamac::noise_level_db(config.freq_khz, config.bandwidth_hz,
                                              config.noise)},
      effective_floor_db_{effective_floor_for(config_, noise_level_db_)},
      interference_cutoff_m_{interference_cutoff_for(config_, effective_floor_db_)},
      spatial_index_{interference_cutoff_m_},
      workspaces_(1),
      path_cache_{propagation, config.freq_khz, config.enable_surface_echo} {
  if (config_.interference_range_m < config_.comm_range_m) {
    throw std::invalid_argument("interference_range_m must be >= comm_range_m");
  }
}

void AcousticChannel::attach(AcousticModem& modem) {
  for (const AcousticModem* existing : modems_) {
    if (existing == &modem || existing->id() == modem.id()) {
      throw std::logic_error("modem attached twice / duplicate id");
    }
  }
  modems_.push_back(&modem);
  modem.set_channel(this);
  if (config_.use_spatial_index) spatial_index_.insert(modem);
  if (config_.cache_paths) path_cache_.ensure_capacity(modem.id());
}

void AcousticChannel::on_position_changed(const AcousticModem& modem) {
  if (config_.use_spatial_index) spatial_index_.refresh(modem);
}

void AcousticChannel::start_transmission(const AcousticModem& sender, const Frame& frame,
                                         Duration airtime) {
  const PhaseScope phase{phase_hook_, SimPhase::kChannelDelivery};
  transmissions_.fetch_add(1, std::memory_order_relaxed);
  const Time now = sim_.now();
  TransmissionAudit audit{};
  const bool auditing = static_cast<bool>(audit_);
  if (auditing) {
    audit.sender = sender.id();
    audit.frame = frame;
    audit.tx_window = TimeInterval{now, now + airtime};
  }

  // One immutable copy of the frame shared by every per-receiver arrival
  // lambda (previously each lambda carried its own Frame copy).
  const auto shared_frame = std::make_shared<const Frame>(frame);

  // Candidate set: the 27-cell neighbourhood is a superset of every modem
  // within the interference cutoff, in attach order — the same modems the
  // brute-force scan would accept, visited in the same relative order.
  // Each execution context owns its workspace (prepare_parallel sizes the
  // table before sharded runs start).
  const std::vector<AcousticModem*>* receivers = &modems_;
  if (config_.use_spatial_index) {
    const std::size_t ctx = sim_.context_index();
    assert(ctx < workspaces_.size() && "call prepare_parallel() after enable_sharding");
    Workspace& ws = workspaces_[ctx];
    spatial_index_.candidates(sender.position(), ws.candidates, ws.scratch);
    receivers = &ws.candidates;
  }

  for (AcousticModem* receiver : *receivers) {
    if (receiver == &sender) continue;

    const PropagationModel::Path path =
        config_.cache_paths
            ? path_cache_.direct(sender, *receiver)
            : propagation_.compute(sender.position(), receiver->position(),
                                   config_.freq_khz);
    const double rx_level = config_.source_level_db - path.loss_db;

    bool reaches = false;
    bool decodable = false;
    double threshold = config_.detection_threshold_db;
    switch (config_.mode) {
      case DeliveryMode::kRangeBased:
        reaches = path.length_m <= config_.interference_range_m;
        decodable = path.length_m <= config_.comm_range_m;
        // Encode decodability as a threshold the reception model applies:
        // in-range arrivals always clear it; out-of-range never do.
        threshold = decodable ? -1e9 : 1e9;
        break;
      case DeliveryMode::kLevelBased:
        reaches = rx_level >= effective_floor_db_;
        decodable = rx_level >= config_.detection_threshold_db;
        break;
    }
    if (!reaches) continue;

    const TimeInterval window{now + path.delay, now + path.delay + airtime};
    if (auditing) {
      audit.reaches.push_back({receiver->id(), window, rx_level, decodable});
    }
    // Arrivals execute on the *receiver's* lane: under sharding that routes
    // them to the receiver's shard queue (cross-shard pushes are covered by
    // the conservative lookahead, which lower-bounds path.delay).
    const std::uint32_t rx_lane = receiver->id() + 1;
    sim_.at_lane(rx_lane, window.begin, [receiver, shared_frame, rx_level, window,
                                         noise = noise_level_db_, threshold] {
      receiver->begin_arrival(*shared_frame, rx_level, window, noise, threshold);
    });

    // First-order surface echo (SINR physics only): a delayed, attenuated
    // replica that interferes but is never decodable.
    if (config_.enable_surface_echo && config_.mode == DeliveryMode::kLevelBased) {
      const PropagationModel::Path echo =
          config_.cache_paths
              ? path_cache_.surface_echo(sender, *receiver,
                                         config_.surface_reflection_loss_db)
              : surface_echo_path(propagation_, sender.position(), receiver->position(),
                                  config_.freq_khz, config_.surface_reflection_loss_db);
      const double echo_level = config_.source_level_db - echo.loss_db;
      if (echo_level >= effective_floor_db_ && echo.delay > path.delay) {
        const TimeInterval echo_window{now + echo.delay, now + echo.delay + airtime};
        sim_.at_lane(rx_lane, echo_window.begin,
                     [receiver, shared_frame, echo_level, echo_window,
                      noise = noise_level_db_] {
                       receiver->begin_arrival(*shared_frame, echo_level, echo_window,
                                               noise,
                                               /*detection_threshold_db=*/1e9);
                     });
      }
    }
  }

  if (auditing) {
    // Inside a conservative window the audit sink is shared with other
    // shards; defer_ordered replays it at the barrier in exact serial
    // order. Outside (serial engine, coordinator), call through directly.
    if (sim_.in_parallel_region()) {
      sim_.defer_ordered([this, a = std::move(audit)] { audit_(a); });
    } else {
      audit_(audit);
    }
  }
}

}  // namespace aquamac

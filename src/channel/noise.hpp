#pragma once
// Ambient ocean noise (Wenz curves, as parameterized by Stojanovic 2007).
//
// Four components — turbulence, distant shipping, wind/surface agitation,
// and thermal noise — each a power spectral density in dB re uPa^2/Hz.
// The reception model integrates the PSD over the receiver bandwidth to
// obtain the noise level entering the SINR computation.

namespace aquamac {

struct NoiseParams {
  /// Shipping activity factor in [0, 1].
  double shipping{0.5};
  /// Wind speed in m/s.
  double wind_mps{0.0};
};

/// Component PSDs at frequency f (kHz), in dB re uPa^2/Hz.
[[nodiscard]] double turbulence_noise_db(double freq_khz);
[[nodiscard]] double shipping_noise_db(double freq_khz, double shipping_factor);
[[nodiscard]] double wind_noise_db(double freq_khz, double wind_mps);
[[nodiscard]] double thermal_noise_db(double freq_khz);

/// Total ambient PSD at f (kHz): power sum of the four components.
[[nodiscard]] double ambient_noise_psd_db(double freq_khz, const NoiseParams& params);

/// Noise level over a band [f_center - bw/2, f_center + bw/2], dB re uPa.
/// Approximated as PSD(f_center) + 10 log10(bandwidth_hz), which is exact
/// for a flat PSD and within a fraction of a dB for our narrow bands.
[[nodiscard]] double noise_level_db(double freq_khz, double bandwidth_hz,
                                    const NoiseParams& params);

}  // namespace aquamac

#pragma once
// The shared acoustic medium. Couples transmitting modems to every other
// attached modem through the propagation model, scheduling one arrival
// window per (transmission, receiver) pair.
//
// Delivery modes:
// * kRangeBased reproduces the paper's model: a frame is decodable at
//   receivers within comm_range (1.5 km, Table 2) and acts as pure
//   interference out to interference_range. Collisions follow Eq. (1)
//   via the DeterministicCollisionModel sitting in each modem.
// * kLevelBased is the SINR-physics mode: every modem whose received
//   level clears an interference floor gets the arrival; decodability is
//   the reception model's business.

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "channel/noise.hpp"
#include "channel/propagation.hpp"
#include "channel/propagation_cache.hpp"
#include "channel/spatial_index.hpp"
#include "phy/frame.hpp"
#include "phy/modem.hpp"
#include "sim/simulator.hpp"
#include "util/phase_hook.hpp"
#include "util/time.hpp"

namespace aquamac {

enum class DeliveryMode { kRangeBased, kLevelBased };

/// kLevelBased interference floor is raised to (band noise - this margin):
/// an arrival 30 dB under the noise floor moves the noise-plus-interference
/// power sum by < 0.005 dB and cannot flip any SINR decision, so modeling
/// it would only burn events. This bounds the mode's interference reach —
/// the cutoff radius the spatial index cells derive from.
inline constexpr double kNegligibleInterferenceMarginDb = 30.0;

struct ChannelConfig {
  double freq_khz{10.0};
  double bandwidth_hz{12'000.0};
  double source_level_db{156.0};  ///< dB re uPa @ 1 m
  DeliveryMode mode{DeliveryMode::kRangeBased};
  double comm_range_m{1'500.0};          ///< Table 2 communication range
  double interference_range_m{1'500.0};  ///< >= comm_range_m
  /// kLevelBased: arrivals below this received level are not modeled.
  double interference_floor_db{40.0};
  /// kLevelBased: reception-model detection threshold (absolute level).
  double detection_threshold_db{60.0};
  NoiseParams noise{};

  /// kLevelBased only: also deliver a first-order surface-bounce echo of
  /// every transmission (image-source method). Echoes arrive later and
  /// weaker and act as self-interference/ISI; they are never decodable
  /// (their detection threshold is pinned above their level). Ignored in
  /// kRangeBased mode, whose Eq.-1 semantics predate multipath.
  bool enable_surface_echo{false};
  double surface_reflection_loss_db{6.0};

  /// Memoize per-pair propagation paths (see PropagationCache). Cached
  /// entries are invalidated by position epochs, so results are
  /// bit-identical with the cache on or off; the knob exists for A/B
  /// benchmarking and tests.
  bool cache_paths{true};

  /// Spreading law of the propagation model driving this channel. Network
  /// threads it into the model it builds; the kLevelBased cutoff-radius
  /// derivation inverts the same law, so the two must agree when a channel
  /// and model are wired by hand.
  Spreading spreading{Spreading::kPractical};

  /// Per-transmission receiver lookup through SpatialReceiverIndex (cell
  /// size = the interference cutoff radius) instead of scanning every
  /// attached modem. The candidate set is a conservative superset filtered
  /// by the exact reach predicate in attach order, so deliveries, traces
  /// and audits are bit-identical with the index on or off; the knob
  /// exists for A/B benchmarking (bench_scale) and the differential
  /// oracle tests.
  bool use_spatial_index{true};
};

/// Ground-truth record of one transmission, for tests and invariants
/// (e.g. "EW-MAC extra packets never overlap negotiated packets at any
/// receiver"). Not visible to protocols.
struct TransmissionAudit {
  NodeId sender{kNoNode};
  Frame frame{};
  TimeInterval tx_window{};
  struct Reach {
    NodeId receiver;
    TimeInterval window;
    double rx_level_db;
    bool decodable;
  };
  std::vector<Reach> reaches;
};

class AcousticChannel {
 public:
  AcousticChannel(Simulator& sim, const PropagationModel& propagation, ChannelConfig config);

  AcousticChannel(const AcousticChannel&) = delete;
  AcousticChannel& operator=(const AcousticChannel&) = delete;

  /// Registers a modem on the medium (modem.set_channel is called).
  void attach(AcousticModem& modem);

  [[nodiscard]] std::size_t modem_count() const { return modems_.size(); }

  /// Invoked by AcousticModem::transmit. Positions are sampled now.
  void start_transmission(const AcousticModem& sender, const Frame& frame, Duration airtime);

  /// Invoked by AcousticModem::set_position after a real move, keeping the
  /// spatial index coherent under mobility (epoch-gated re-bin).
  void on_position_changed(const AcousticModem& modem);

  /// Ground-truth path between two points (harness / tests only).
  [[nodiscard]] PropagationModel::Path path_between(const Vec3& a, const Vec3& b) const {
    return propagation_.compute(a, b, config_.freq_khz);
  }

  /// Band noise level seen by every receiver.
  [[nodiscard]] double noise_level_db() const { return noise_level_db_; }

  [[nodiscard]] const ChannelConfig& config() const { return config_; }

  using AuditFn = std::function<void(const TransmissionAudit&)>;
  void set_audit(AuditFn audit) { audit_ = std::move(audit); }

  /// Optional per-phase instrumentation (serial profiling runs only; see
  /// util/phase_hook.hpp). Null disables.
  void set_phase_hook(PhaseHook* hook) { phase_hook_ = hook; }

  /// Sizes the per-execution-context query workspaces. Must be called
  /// (from a non-parallel context) after Simulator::enable_sharding and
  /// before the first transmission; serial runs need not call it.
  void prepare_parallel() { workspaces_.resize(sim_.context_count()); }

  [[nodiscard]] std::uint64_t transmissions() const {
    return transmissions_.load(std::memory_order_relaxed);
  }
  /// Checkpoint restore: overwrite the transmission tally (the only piece
  /// of channel state that is not a rebuildable cache).
  void set_transmissions(std::uint64_t count) {
    transmissions_.store(count, std::memory_order_relaxed);
  }

  /// Propagation-cache effectiveness counters (diagnostics / benches).
  [[nodiscard]] std::uint64_t path_cache_hits() const { return path_cache_.hits(); }
  [[nodiscard]] std::uint64_t path_cache_misses() const { return path_cache_.misses(); }

  /// Radius beyond which no attached modem can register even as
  /// interference; sizes the spatial-index cells. kRangeBased: the
  /// configured interference range. kLevelBased: inverse link budget at
  /// the effective interference floor.
  [[nodiscard]] double interference_cutoff_m() const { return interference_cutoff_m_; }

  /// kLevelBased floor actually applied to arrivals:
  /// max(config.interference_floor_db, noise - kNegligibleInterferenceMarginDb).
  [[nodiscard]] double effective_interference_floor_db() const { return effective_floor_db_; }

  /// Mobility-triggered spatial re-binnings (diagnostics / tests).
  [[nodiscard]] std::uint64_t spatial_rebins() const { return spatial_index_.rebins(); }

 private:
  /// Per-execution-context query workspace: shard workers run
  /// start_transmission concurrently, so each context gets its own
  /// candidate/scratch buffers (indexed by Simulator::context_index).
  struct Workspace {
    std::vector<AcousticModem*> candidates;
    std::vector<std::size_t> scratch;
  };

  Simulator& sim_;
  const PropagationModel& propagation_;
  ChannelConfig config_;
  double noise_level_db_;
  double effective_floor_db_;
  double interference_cutoff_m_;
  std::vector<AcousticModem*> modems_;
  SpatialReceiverIndex spatial_index_;
  std::vector<Workspace> workspaces_;
  PropagationCache path_cache_;
  AuditFn audit_{};
  PhaseHook* phase_hook_{nullptr};
  std::atomic<std::uint64_t> transmissions_{0};
};

}  // namespace aquamac

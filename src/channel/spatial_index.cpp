#include "channel/spatial_index.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aquamac {

SpatialReceiverIndex::SpatialReceiverIndex(double cell_size_m)
    : cell_size_m_{std::max(cell_size_m, 1.0)} {}

SpatialReceiverIndex::CellKey SpatialReceiverIndex::key_for(const Vec3& pos) const {
  return CellKey{
      static_cast<std::int64_t>(std::floor(pos.x / cell_size_m_)),
      static_cast<std::int64_t>(std::floor(pos.y / cell_size_m_)),
      static_cast<std::int64_t>(std::floor(pos.z / cell_size_m_)),
  };
}

void SpatialReceiverIndex::bin(std::size_t ordinal, const CellKey& cell) {
  cells_[cell].push_back(ordinal);
  records_[ordinal].cell = cell;
  records_[ordinal].epoch = records_[ordinal].modem->position_epoch();
}

void SpatialReceiverIndex::unbin(std::size_t ordinal, const CellKey& cell) {
  auto it = cells_.find(cell);
  if (it == cells_.end()) return;
  std::vector<std::size_t>& bucket = it->second;
  // Order within a bucket is irrelevant (queries sort by ordinal), so
  // swap-erase keeps removal O(bucket).
  const auto pos = std::find(bucket.begin(), bucket.end(), ordinal);
  if (pos != bucket.end()) {
    *pos = bucket.back();
    bucket.pop_back();
  }
  if (bucket.empty()) cells_.erase(it);
}

void SpatialReceiverIndex::insert(AcousticModem& modem) {
  if (ordinals_.contains(&modem)) throw std::logic_error("modem indexed twice");
  const std::size_t ordinal = records_.size();
  ordinals_.emplace(&modem, ordinal);
  records_.push_back(Record{&modem, CellKey{}, 0});
  bin(ordinal, key_for(modem.position()));
}

void SpatialReceiverIndex::refresh(const AcousticModem& modem) {
  const auto it = ordinals_.find(&modem);
  if (it == ordinals_.end()) return;
  Record& record = records_[it->second];
  if (record.epoch == modem.position_epoch()) return;
  const CellKey cell = key_for(modem.position());
  if (cell == record.cell) {
    // Moved within its cell: only the epoch stamp needs updating.
    record.epoch = modem.position_epoch();
    return;
  }
  unbin(it->second, record.cell);
  bin(it->second, cell);
  ++rebins_;
}

void SpatialReceiverIndex::candidates(const Vec3& center,
                                      std::vector<AcousticModem*>& out,
                                      std::vector<std::size_t>& scratch) const {
  out.clear();
  scratch.clear();
  const CellKey base = key_for(center);
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dz = -1; dz <= 1; ++dz) {
        const auto it = cells_.find(CellKey{base.x + dx, base.y + dy, base.z + dz});
        if (it == cells_.end()) continue;
        scratch.insert(scratch.end(), it->second.begin(), it->second.end());
      }
    }
  }
  // Ordinal order == attach order: the channel's brute-force visitation
  // order, which the determinism contract requires.
  std::sort(scratch.begin(), scratch.end());
  out.reserve(scratch.size());
  for (const std::size_t ordinal : scratch) out.push_back(records_[ordinal].modem);
}

}  // namespace aquamac

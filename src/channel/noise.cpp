#include "channel/noise.hpp"

#include <algorithm>
#include <cmath>

namespace aquamac {

namespace {
[[nodiscard]] double db_to_power(double db) { return std::pow(10.0, db / 10.0); }
[[nodiscard]] double power_to_db(double p) { return 10.0 * std::log10(p); }
}  // namespace

double turbulence_noise_db(double freq_khz) {
  const double f = std::max(freq_khz, 1e-3);
  return 17.0 - 30.0 * std::log10(f);
}

double shipping_noise_db(double freq_khz, double shipping_factor) {
  const double f = std::max(freq_khz, 1e-3);
  const double s = std::clamp(shipping_factor, 0.0, 1.0);
  return 40.0 + 20.0 * (s - 0.5) + 26.0 * std::log10(f) - 60.0 * std::log10(f + 0.03);
}

double wind_noise_db(double freq_khz, double wind_mps) {
  const double f = std::max(freq_khz, 1e-3);
  const double w = std::max(wind_mps, 0.0);
  return 50.0 + 7.5 * std::sqrt(w) + 20.0 * std::log10(f) - 40.0 * std::log10(f + 0.4);
}

double thermal_noise_db(double freq_khz) {
  const double f = std::max(freq_khz, 1e-3);
  return -15.0 + 20.0 * std::log10(f);
}

double ambient_noise_psd_db(double freq_khz, const NoiseParams& params) {
  const double total = db_to_power(turbulence_noise_db(freq_khz)) +
                       db_to_power(shipping_noise_db(freq_khz, params.shipping)) +
                       db_to_power(wind_noise_db(freq_khz, params.wind_mps)) +
                       db_to_power(thermal_noise_db(freq_khz));
  return power_to_db(total);
}

double noise_level_db(double freq_khz, double bandwidth_hz, const NoiseParams& params) {
  return ambient_noise_psd_db(freq_khz, params) + 10.0 * std::log10(std::max(bandwidth_hz, 1.0));
}

}  // namespace aquamac

#include "channel/propagation_cache.hpp"

#include <algorithm>

namespace aquamac {

void PropagationCache::ensure_capacity(NodeId max_id) {
  if (max_id > kMaxCachedId) return;
  const std::size_t need = static_cast<std::size_t>(max_id) + 1;
  if (need <= dim_) return;
  // Grow geometrically (attach is called once per modem, so O(log n)
  // rebuilds total), clamped at the ceiling; the rebuild re-indexes
  // existing entries into the wider table.
  const std::size_t new_dim =
      std::min<std::size_t>(std::max<std::size_t>(need, dim_ == 0 ? 8 : dim_ * 2),
                            static_cast<std::size_t>(kMaxCachedId) + 1);
  auto rebuild = [&](std::vector<Entry>& table) {
    std::vector<Entry> wider(new_dim * new_dim);
    for (std::size_t f = 0; f < dim_; ++f) {
      for (std::size_t t = 0; t < dim_; ++t) {
        wider[f * new_dim + t] = table[f * dim_ + t];
      }
    }
    table = std::move(wider);
  };
  rebuild(direct_);
  if (cache_echo_) rebuild(echo_);
  dim_ = new_dim;
}

template <typename Compute>
PropagationModel::Path PropagationCache::lookup(std::vector<Entry>& table,
                                                const AcousticModem& from,
                                                const AcousticModem& to,
                                                const Compute& compute) {
  const std::size_t f = from.id();
  const std::size_t t = to.id();
  if (f >= dim_ || t >= dim_ || table.empty()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return compute();
  }
  Entry& entry = table[f * dim_ + t];
  if (entry.from_epoch == from.position_epoch() && entry.to_epoch == to.position_epoch()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return entry.path;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  entry.path = compute();
  entry.from_epoch = from.position_epoch();
  entry.to_epoch = to.position_epoch();
  return entry.path;
}

PropagationModel::Path PropagationCache::direct(const AcousticModem& from,
                                                const AcousticModem& to) {
  return lookup(direct_, from, to, [&] {
    return model_.compute(from.position(), to.position(), freq_khz_);
  });
}

PropagationModel::Path PropagationCache::surface_echo(const AcousticModem& from,
                                                      const AcousticModem& to,
                                                      double reflection_loss_db) {
  return lookup(echo_, from, to, [&] {
    return surface_echo_path(model_, from.position(), to.position(), freq_khz_,
                             reflection_loss_db);
  });
}

}  // namespace aquamac

#include "channel/reception.hpp"

#include <algorithm>
#include <cmath>

namespace aquamac {

namespace {
[[nodiscard]] double db_to_power(double db) { return std::pow(10.0, db / 10.0); }
}  // namespace

RxOutcome DeterministicCollisionModel::decide(const ReceptionContext& ctx, Rng&) const {
  if (ctx.rx_level_db < ctx.detection_threshold_db) return RxOutcome::kBelowThreshold;
  if (ctx.receiver_transmitted) return RxOutcome::kHalfDuplexLoss;
  if (!ctx.interferer_levels_db.empty()) return RxOutcome::kCollision;
  return RxOutcome::kSuccess;
}

double bit_error_rate(Modulation modulation, double snr_linear) {
  const double snr = std::max(snr_linear, 0.0);
  switch (modulation) {
    case Modulation::kFskNoncoherent:
      return 0.5 * std::exp(-snr / 2.0);
    case Modulation::kBpskCoherent:
      // Q(x) = erfc(x / sqrt(2)) / 2; here x = sqrt(2 snr).
      return 0.5 * std::erfc(std::sqrt(snr));
    case Modulation::kFskRayleigh:
      return 1.0 / (2.0 + snr);
  }
  return 0.5;
}

double packet_error_rate(double ber, std::uint32_t bits) {
  const double b = std::clamp(ber, 0.0, 1.0);
  if (b == 0.0) return 0.0;
  if (b == 1.0) return 1.0;
  // 1 - (1-b)^n computed stably for tiny b via expm1/log1p.
  return -std::expm1(static_cast<double>(bits) * std::log1p(-b));
}

RxOutcome SinrPerModel::decide(const ReceptionContext& ctx, Rng& rng) const {
  if (ctx.rx_level_db < ctx.detection_threshold_db) return RxOutcome::kBelowThreshold;
  if (ctx.receiver_transmitted) return RxOutcome::kHalfDuplexLoss;

  const double signal = db_to_power(ctx.rx_level_db);
  double denom = db_to_power(ctx.noise_level_db);
  for (double level_db : ctx.interferer_levels_db) denom += db_to_power(level_db);
  const double sinr = signal / denom;

  if (10.0 * std::log10(std::max(sinr, 1e-30)) < detection_snr_db_) {
    return ctx.interferer_levels_db.empty() ? RxOutcome::kChannelError : RxOutcome::kCollision;
  }

  const double per = packet_error_rate(bit_error_rate(modulation_, sinr), ctx.bits);
  if (rng.bernoulli(per)) {
    return ctx.interferer_levels_db.empty() ? RxOutcome::kChannelError : RxOutcome::kCollision;
  }
  return RxOutcome::kSuccess;
}

}  // namespace aquamac

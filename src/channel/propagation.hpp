#pragma once
// Propagation models: given two positions, produce the first-arrival
// travel time and transmission loss.
//
// * StraightLinePropagation — the paper's analytical model: delay =
//   distance / sound speed (0.67 s/km at 1.5 km/s), loss from spreading +
//   Thorp absorption. Used by all figure reproductions.
// * BellhopLitePropagation — our substitution for ns-3's Bellhop channel:
//   a constant-gradient eigenray solver. Under c(z) = c0 + g z, rays are
//   circular arcs centred on the depth where the extrapolated profile
//   vanishes; the arc through both endpoints gives the bent path length
//   and the exact ray-theoretic travel time (1/g) ln(tan(th_b/2) /
//   tan(th_a/2)). This reproduces the delay dispersion Bellhop supplied
//   to the authors' simulations without a full beam tracer (DESIGN.md §5).

#include <memory>

#include "channel/absorption.hpp"
#include "channel/sound_speed.hpp"
#include "util/time.hpp"
#include "util/vec3.hpp"

namespace aquamac {

class PropagationModel {
 public:
  struct Path {
    Duration delay;      ///< first-arrival travel time
    double loss_db;      ///< transmission loss along the path
    double length_m;     ///< geometric path length
  };

  virtual ~PropagationModel() = default;

  [[nodiscard]] virtual Path compute(const Vec3& from, const Vec3& to,
                                     double freq_khz) const = 0;

  /// Conservative lower bound on the first-arrival delay between any two
  /// points `distance_m` apart anywhere in the water column down to
  /// `max_depth_m` (pass the deployment depth; refracted arcs that dip
  /// slightly past it are covered by the implementations' own margins).
  /// The sharded engine derives its lookahead from this: every delay
  /// compute() can produce for such a pair must be >= the bound. The
  /// default divides by 1700 m/s, above any speed the ocean attains.
  [[nodiscard]] virtual Duration min_delay(double distance_m, double max_depth_m) const;
};

/// First-order surface-bounce eigenray via the image-source method: the
/// transmitter is mirrored across the sea surface (z -> -z) and the
/// image-to-receiver path computed with `model`. The reflection itself
/// costs `reflection_loss_db` (sea-surface scattering; a few dB at low
/// sea states). The echo always arrives after the direct path.
[[nodiscard]] PropagationModel::Path surface_echo_path(const PropagationModel& model,
                                                       const Vec3& from, const Vec3& to,
                                                       double freq_khz,
                                                       double reflection_loss_db = 6.0);

class StraightLinePropagation final : public PropagationModel {
 public:
  explicit StraightLinePropagation(double sound_speed_mps = 1500.0,
                                   Spreading spreading = Spreading::kPractical)
      : speed_{sound_speed_mps}, spreading_{spreading} {}

  [[nodiscard]] Path compute(const Vec3& from, const Vec3& to,
                             double freq_khz) const override;

  /// Exact: delay is always distance / speed.
  [[nodiscard]] Duration min_delay(double distance_m, double max_depth_m) const override;

  [[nodiscard]] double sound_speed() const { return speed_; }

 private:
  double speed_;
  Spreading spreading_;
};

class BellhopLitePropagation final : public PropagationModel {
 public:
  BellhopLitePropagation(std::shared_ptr<const SoundSpeedProfile> profile,
                         Spreading spreading = Spreading::kPractical)
      : profile_{std::move(profile)}, spreading_{spreading} {}

  [[nodiscard]] Path compute(const Vec3& from, const Vec3& to,
                             double freq_khz) const override;

  /// distance / (max profile speed over the depth range, widened for ray
  /// sagitta, times a small sampling-safety factor).
  [[nodiscard]] Duration min_delay(double distance_m, double max_depth_m) const override;

 private:
  /// Straight-path fallback integrating slowness along the chord; used
  /// when the local gradient is negligible or the arc solve degenerates.
  [[nodiscard]] Path straight_path(const Vec3& from, const Vec3& to, double freq_khz) const;

  std::shared_ptr<const SoundSpeedProfile> profile_;
  Spreading spreading_;
};

}  // namespace aquamac

#include "channel/sound_speed.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace aquamac {

double SoundSpeedProfile::mean_slowness(double depth_a_m, double depth_b_m) const {
  if (depth_a_m > depth_b_m) std::swap(depth_a_m, depth_b_m);
  constexpr int kSegments = 64;
  const double h = (depth_b_m - depth_a_m) / kSegments;
  if (h == 0.0) return 1.0 / speed_at(depth_a_m);
  double sum = 0.5 * (1.0 / speed_at(depth_a_m) + 1.0 / speed_at(depth_b_m));
  for (int i = 1; i < kSegments; ++i) sum += 1.0 / speed_at(depth_a_m + h * i);
  return sum / kSegments;
}

double SoundSpeedProfile::max_speed(double depth_lo_m, double depth_hi_m) const {
  if (depth_lo_m > depth_hi_m) std::swap(depth_lo_m, depth_hi_m);
  constexpr int kSegments = 64;
  const double h = (depth_hi_m - depth_lo_m) / kSegments;
  double best = std::max(speed_at(depth_lo_m), speed_at(depth_hi_m));
  for (int i = 1; i < kSegments; ++i) {
    best = std::max(best, speed_at(depth_lo_m + h * i));
  }
  return best;
}

double SoundSpeedProfile::gradient_at(double depth_m) const {
  constexpr double kStep = 1.0;  // metres
  const double lo = std::max(0.0, depth_m - kStep);
  const double hi = depth_m + kStep;
  return (speed_at(hi) - speed_at(lo)) / (hi - lo);
}

double MunkProfile::speed_at(double depth_m) const {
  const double eta = 2.0 * (depth_m - z1_) / scale_;
  return c1_ * (1.0 + eps_ * (eta + std::exp(-eta) - 1.0));
}

TabulatedProfile::TabulatedProfile(std::vector<Sample> samples) : samples_{std::move(samples)} {
  if (samples_.size() < 2) throw std::invalid_argument("TabulatedProfile needs >= 2 samples");
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (samples_[i].depth_m <= samples_[i - 1].depth_m) {
      throw std::invalid_argument("TabulatedProfile depths must be strictly increasing");
    }
  }
}

double TabulatedProfile::speed_at(double depth_m) const {
  if (depth_m <= samples_.front().depth_m) return samples_.front().speed_mps;
  if (depth_m >= samples_.back().depth_m) return samples_.back().speed_mps;
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), depth_m,
      [](const Sample& s, double d) { return s.depth_m < d; });
  const Sample& hi = *it;
  const Sample& lo = *(it - 1);
  const double t = (depth_m - lo.depth_m) / (hi.depth_m - lo.depth_m);
  return lo.speed_mps + t * (hi.speed_mps - lo.speed_mps);
}

double mackenzie_sound_speed(double temperature_c, double salinity_ppt, double depth_m) {
  const double t = temperature_c;
  const double s = salinity_ppt;
  const double d = depth_m;
  return 1448.96 + 4.591 * t - 5.304e-2 * t * t + 2.374e-4 * t * t * t +
         1.340 * (s - 35.0) + 1.630e-2 * d + 1.675e-7 * d * d -
         1.025e-2 * t * (s - 35.0) - 7.139e-13 * t * d * d * d;
}

}  // namespace aquamac

#pragma once
// Pairwise memoization of PropagationModel::compute.
//
// The channel recomputes the full propagation path (spreading + Thorp
// absorption + delay) for every receiver on every frame, but positions
// only change at mobility-update cadence — in static deployments, never.
// This cache keys paths by (sender, receiver) and validates entries
// against each modem's position epoch (bumped by set_position on real
// movement), so static scenarios compute each pair exactly once and
// mobile scenarios recompute a pair only after one of its endpoints
// moved. Cached values are the bit-identical doubles compute() produced,
// so caching can never change simulation results.

#include <atomic>
#include <cstdint>
#include <vector>

#include "channel/propagation.hpp"
#include "phy/modem.hpp"

namespace aquamac {

class PropagationCache {
 public:
  /// `cache_echo` additionally memoizes surface-echo paths (only worth
  /// the second pair table when the channel has echoes enabled).
  PropagationCache(const PropagationModel& model, double freq_khz, bool cache_echo = false)
      : model_{model}, freq_khz_{freq_khz}, cache_echo_{cache_echo} {}

  /// Grows the pair tables to cover modem ids up to `max_id`. Ids beyond
  /// kMaxCachedId are served uncached (the flat O(n^2) table would be too
  /// big); Network assigns dense ids so real runs always cache.
  void ensure_capacity(NodeId max_id);

  /// Direct path from `from` to `to`, memoized per position epochs.
  [[nodiscard]] PropagationModel::Path direct(const AcousticModem& from,
                                              const AcousticModem& to);

  /// First-order surface-bounce path (image-source method), memoized the
  /// same way. `reflection_loss_db` is folded into the cached loss.
  [[nodiscard]] PropagationModel::Path surface_echo(const AcousticModem& from,
                                                    const AcousticModem& to,
                                                    double reflection_loss_db);

  [[nodiscard]] std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Flat-table ceiling: up to (kMaxCachedId+1)^2 entries per table
  /// (~170 MB at 40 B/entry), only ever reached by runs that actually
  /// deploy that many nodes.
  static constexpr NodeId kMaxCachedId = 2'047;

 private:
  struct Entry {
    std::uint64_t from_epoch{0};  ///< 0 = empty (modem epochs start at 1)
    std::uint64_t to_epoch{0};
    PropagationModel::Path path{};
  };

  template <typename Compute>
  PropagationModel::Path lookup(std::vector<Entry>& table, const AcousticModem& from,
                                const AcousticModem& to, const Compute& compute);

  const PropagationModel& model_;
  double freq_khz_;
  bool cache_echo_;
  std::size_t dim_{0};  ///< tables are dim_ x dim_, indexed [from * dim_ + to]
  std::vector<Entry> direct_;
  std::vector<Entry> echo_;  ///< empty unless cache_echo_
  /// Counters are touched from concurrent shard workers (entry rows are
  /// per-sender and senders are shard-owned, so the *entries* need no
  /// synchronization — only these shared tallies do).
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace aquamac

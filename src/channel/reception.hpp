#pragma once
// Reception models: decide whether a completed arrival was decodable.
//
// * DeterministicCollisionModel implements the paper's Eq. (1) exactly: a
//   packet is received iff (a) the receiver never transmitted during the
//   arrival window (half-duplex) and (b) no other packet overlapped it at
//   the receiver. No capture effect.
// * SinrPerModel is the ns-3-UAN-style "Default PER / Default SINR"
//   substitute: signal-to-(interference+noise) ratio -> bit error rate for
//   the configured modulation -> packet error rate -> Bernoulli draw.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace aquamac {

enum class RxOutcome : std::uint8_t {
  kSuccess,
  kHalfDuplexLoss,  ///< receiver was transmitting during the window
  kCollision,       ///< overlap loss (deterministic model)
  kChannelError,    ///< SINR/PER loss (probabilistic model)
  kBelowThreshold,  ///< signal too weak to detect at all
};

/// Everything the model may consult about one finished arrival.
struct ReceptionContext {
  double rx_level_db{0.0};    ///< received level, dB re uPa
  double noise_level_db{0.0}; ///< band noise level, dB re uPa
  std::uint32_t bits{0};      ///< frame length
  /// Received levels of every other arrival overlapping this window.
  std::vector<double> interferer_levels_db{};
  bool receiver_transmitted{false};
  /// Minimum detectable level; below it the frame is never seen.
  double detection_threshold_db{0.0};
};

class ReceptionModel {
 public:
  virtual ~ReceptionModel() = default;
  [[nodiscard]] virtual RxOutcome decide(const ReceptionContext& ctx, Rng& rng) const = 0;
};

class DeterministicCollisionModel final : public ReceptionModel {
 public:
  [[nodiscard]] RxOutcome decide(const ReceptionContext& ctx, Rng& rng) const override;
};

enum class Modulation : std::uint8_t {
  kFskNoncoherent,  ///< BER = 1/2 exp(-snr/2); classic UAN default
  kBpskCoherent,    ///< BER = Q(sqrt(2 snr))
  kFskRayleigh,     ///< BER = 1/(2 + snr); fading channel
};

/// Uncoded bit error rate at the given linear SNR.
[[nodiscard]] double bit_error_rate(Modulation modulation, double snr_linear);

/// PER for `bits` independent bit errors at `ber`.
[[nodiscard]] double packet_error_rate(double ber, std::uint32_t bits);

class SinrPerModel final : public ReceptionModel {
 public:
  explicit SinrPerModel(Modulation modulation = Modulation::kFskNoncoherent,
                        double required_detection_snr_db = 0.0)
      : modulation_{modulation}, detection_snr_db_{required_detection_snr_db} {}

  [[nodiscard]] RxOutcome decide(const ReceptionContext& ctx, Rng& rng) const override;

 private:
  Modulation modulation_;
  double detection_snr_db_;
};

}  // namespace aquamac

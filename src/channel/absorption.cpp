#include "channel/absorption.hpp"

#include <algorithm>
#include <cmath>

namespace aquamac {

double thorp_absorption_db_per_km(double freq_khz) {
  const double f2 = freq_khz * freq_khz;
  if (freq_khz >= 0.4) {
    return 0.11 * f2 / (1.0 + f2) + 44.0 * f2 / (4100.0 + f2) + 2.75e-4 * f2 + 0.003;
  }
  // Low-frequency branch (Thorp's fit below 400 Hz).
  return 0.002 + 0.11 * (f2 / (1.0 + f2)) + 0.011 * f2;
}

double fisher_simmons_absorption_db_per_km(double freq_khz, double temperature_c) {
  const double t = temperature_c;
  const double f = freq_khz;
  const double f2 = f * f;
  // Relaxation frequencies (kHz); empirical fits at S=35, pH=8, 1 atm.
  const double f1 = 0.78 * std::sqrt(35.0 / 35.0) * std::exp(t / 26.0);
  const double fm = 42.0 * std::exp(t / 17.0);
  // Component amplitudes (dB/km/kHz^2 scale factors).
  const double boric = 0.106 * (f1 * f2) / (f2 + f1 * f1);
  const double mgso4 = 0.52 * (1.0 + t / 43.0) * (fm * f2) / (f2 + fm * fm);
  const double water = 4.9e-4 * f2 * std::exp(-t / 27.0);
  return boric + mgso4 + water;
}

double transmission_loss_db(double distance_m, double freq_khz, Spreading spreading) {
  const double d = std::max(distance_m, 1.0);
  const double geometric = spreading_factor(spreading) * 10.0 * std::log10(d);
  const double absorptive = (d / 1000.0) * thorp_absorption_db_per_km(freq_khz);
  return geometric + absorptive;
}

double max_range_for_loss_db(double loss_budget_db, double freq_khz, Spreading spreading) {
  constexpr double kMinRangeM = 1.0;
  constexpr double kMaxRangeM = 1e7;
  if (transmission_loss_db(kMinRangeM, freq_khz, spreading) >= loss_budget_db) {
    return kMinRangeM;
  }
  if (transmission_loss_db(kMaxRangeM, freq_khz, spreading) <= loss_budget_db) {
    return kMaxRangeM;
  }
  double lo = kMinRangeM;  // TL(lo) < budget
  double hi = kMaxRangeM;  // TL(hi) > budget
  while (hi - lo > 1e-3) {
    const double mid = 0.5 * (lo + hi);
    if (transmission_loss_db(mid, freq_khz, spreading) <= loss_budget_db) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // hi is just past the crossing: conservative for cutoff-radius use.
  return hi;
}

}  // namespace aquamac

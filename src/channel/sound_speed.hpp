#pragma once
// Sound-speed profiles (SSP) for the underwater channel.
//
// The paper's analytical model uses a constant 1.5 km/s (§1, Table 2); the
// evaluation additionally relies on ns-3's Bellhop channel, whose behaviour
// is driven by a depth-dependent profile. We provide the constant profile
// (used by the figure reproductions, like the paper's equations), plus
// linear-gradient and Munk profiles consumed by the BellhopLite ray model,
// and the Mackenzie empirical formula for building profiles from
// temperature/salinity.

#include <memory>
#include <vector>

namespace aquamac {

/// Speed of sound as a function of depth (z >= 0 metres below surface).
class SoundSpeedProfile {
 public:
  virtual ~SoundSpeedProfile() = default;

  /// Sound speed in m/s at the given depth.
  [[nodiscard]] virtual double speed_at(double depth_m) const = 0;

  /// Mean of the *slowness* (1/c) between two depths, used for straight
  /// path travel-time integration. Default: 16-point trapezoid.
  [[nodiscard]] virtual double mean_slowness(double depth_a_m, double depth_b_m) const;

  /// Local gradient dc/dz (1/s), central difference by default.
  [[nodiscard]] virtual double gradient_at(double depth_m) const;

  /// Maximum sound speed over a depth interval, used by the sharded
  /// engine's conservative lookahead (delay >= distance / max speed).
  /// Default: dense sampling including both endpoints; profiles with
  /// monotone or analytically known extrema override it exactly.
  [[nodiscard]] virtual double max_speed(double depth_lo_m, double depth_hi_m) const;
};

/// c(z) = c0. Matches the paper's 1.5 km/s assumption.
class ConstantProfile final : public SoundSpeedProfile {
 public:
  explicit ConstantProfile(double speed_mps = 1500.0) : speed_{speed_mps} {}
  [[nodiscard]] double speed_at(double) const override { return speed_; }
  [[nodiscard]] double mean_slowness(double, double) const override { return 1.0 / speed_; }
  [[nodiscard]] double gradient_at(double) const override { return 0.0; }
  [[nodiscard]] double max_speed(double, double) const override { return speed_; }

 private:
  double speed_;
};

/// c(z) = c0 + g * z — the canonical constant-gradient ocean used in ray
/// theory (rays are circular arcs under this profile).
class LinearProfile final : public SoundSpeedProfile {
 public:
  LinearProfile(double surface_speed_mps, double gradient_per_s)
      : c0_{surface_speed_mps}, g_{gradient_per_s} {}
  [[nodiscard]] double speed_at(double depth_m) const override { return c0_ + g_ * depth_m; }
  [[nodiscard]] double gradient_at(double) const override { return g_; }
  /// Linear in depth: the maximum is at whichever interval endpoint the
  /// gradient favours.
  [[nodiscard]] double max_speed(double depth_lo_m, double depth_hi_m) const override {
    const double a = speed_at(depth_lo_m);
    const double b = speed_at(depth_hi_m);
    return a > b ? a : b;
  }

 private:
  double c0_;
  double g_;
};

/// Munk (1974) canonical deep-sound-channel profile:
///   c(z) = c1 * (1 + eps * (eta + exp(-eta) - 1)),  eta = 2 (z - z1) / B
/// with default c1 = 1500 m/s, z1 = 1300 m axis depth, B = 1300 m scale,
/// eps = 0.00737.
class MunkProfile final : public SoundSpeedProfile {
 public:
  MunkProfile(double axis_speed_mps = 1500.0, double axis_depth_m = 1300.0,
              double scale_m = 1300.0, double eps = 0.00737)
      : c1_{axis_speed_mps}, z1_{axis_depth_m}, scale_{scale_m}, eps_{eps} {}
  [[nodiscard]] double speed_at(double depth_m) const override;

 private:
  double c1_;
  double z1_;
  double scale_;
  double eps_;
};

/// Piecewise-linear profile from (depth, speed) samples, the form Bellhop
/// environment files use. Depths must be strictly increasing.
class TabulatedProfile final : public SoundSpeedProfile {
 public:
  struct Sample {
    double depth_m;
    double speed_mps;
  };
  explicit TabulatedProfile(std::vector<Sample> samples);
  [[nodiscard]] double speed_at(double depth_m) const override;

 private:
  std::vector<Sample> samples_;
};

/// Mackenzie (1981) nine-term empirical sound speed equation.
/// temperature in deg C (valid 2-30), salinity in parts per thousand
/// (25-40), depth in metres (0-8000).
[[nodiscard]] double mackenzie_sound_speed(double temperature_c, double salinity_ppt,
                                           double depth_m);

}  // namespace aquamac

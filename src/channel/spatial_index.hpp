#pragma once
// Spatial receiver index: a uniform 3-D hash grid over modem positions.
//
// AcousticChannel::start_transmission used to evaluate every attached
// modem per frame — O(N) per send even though the link budget bounds
// useful reach to a cutoff radius R (1.5 km in the paper's range mode).
// This index bins modems into cubic cells of side R, so the candidate
// receiver set for a transmission is the 3x3x3 cell neighbourhood of the
// sender: every modem within Euclidean distance R of the sender is
// guaranteed to be in one of those 27 cells (a conservative superset —
// the channel still applies its exact reach predicate to each candidate).
//
// Determinism contract: candidates() returns modems sorted by attach
// ordinal, i.e. the same relative order in which the channel's brute
// force scan visits them, so filtering the candidates with the identical
// predicate schedules the identical arrivals in the identical order —
// the event stream is bit-identical with the index on or off.
//
// Mobility coherence rides on the same position-epoch mechanism the
// PropagationCache uses: each record stores the epoch it was binned at,
// and refresh() re-bins only when the modem's epoch moved on. The channel
// calls refresh() from AcousticModem::set_position, so a drifting node is
// re-binned before any subsequent transmission can query the grid.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "phy/modem.hpp"
#include "util/vec3.hpp"

namespace aquamac {

class SpatialReceiverIndex {
 public:
  /// `cell_size_m` must cover the channel's max interference radius: the
  /// 27-cell query is a superset of the R-sphere only when cell >= R.
  /// Clamped below at 1 m (a degenerate cutoff must not divide by zero).
  explicit SpatialReceiverIndex(double cell_size_m);

  /// Registers a modem at its current position. Ordinals are assigned in
  /// insertion (= channel attach) order; inserting twice is a logic error.
  void insert(AcousticModem& modem);

  /// Re-bins `modem` iff its position epoch changed since the last
  /// binning. O(1) amortized; a no-op for unknown modems (position
  /// updates before attach).
  void refresh(const AcousticModem& modem);

  /// Collects every indexed modem within `cell_size_m` of `center` (plus
  /// conservative extras from the same cells) into `out`, sorted by
  /// attach ordinal. `out` and `scratch` are cleared first and reused
  /// across calls; the caller owns both so concurrent readers (the
  /// sharded engine queries from several shard threads) never share
  /// mutable workspace through the index.
  void candidates(const Vec3& center, std::vector<AcousticModem*>& out,
                  std::vector<std::size_t>& scratch) const;

  [[nodiscard]] double cell_size_m() const { return cell_size_m_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  /// Number of epoch-triggered re-binnings (mobility diagnostics).
  [[nodiscard]] std::uint64_t rebins() const { return rebins_; }

 private:
  struct CellKey {
    std::int64_t x{0};
    std::int64_t y{0};
    std::int64_t z{0};
    bool operator==(const CellKey&) const = default;
  };
  struct CellKeyHash {
    std::size_t operator()(const CellKey& key) const {
      std::uint64_t h = 1469598103934665603ULL;
      for (const std::int64_t v : {key.x, key.y, key.z}) {
        h ^= static_cast<std::uint64_t>(v);
        h *= 1099511628211ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };
  struct Record {
    AcousticModem* modem{nullptr};
    CellKey cell{};
    std::uint64_t epoch{0};
  };

  [[nodiscard]] CellKey key_for(const Vec3& pos) const;
  void bin(std::size_t ordinal, const CellKey& cell);
  void unbin(std::size_t ordinal, const CellKey& cell);

  double cell_size_m_;
  /// Indexed by attach ordinal; records are append-only.
  std::vector<Record> records_;
  std::unordered_map<const AcousticModem*, std::size_t> ordinals_;
  /// Cell -> ordinals of the modems currently binned there.
  std::unordered_map<CellKey, std::vector<std::size_t>, CellKeyHash> cells_;
  std::uint64_t rebins_{0};
};

}  // namespace aquamac

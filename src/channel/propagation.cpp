#include "channel/propagation.hpp"

#include <algorithm>
#include <cmath>

namespace aquamac {

Duration PropagationModel::min_delay(double distance_m, double /*max_depth_m*/) const {
  // 1700 m/s exceeds the sound speed anywhere in the ocean (Mackenzie
  // tops out near 1600 m/s at extreme depth), so distance / 1700 bounds
  // any physically plausible first arrival from below.
  constexpr double kSpeedCeiling = 1700.0;
  return Duration::from_seconds(std::max(0.0, distance_m) / kSpeedCeiling);
}

Duration StraightLinePropagation::min_delay(double distance_m, double /*max_depth_m*/) const {
  return Duration::from_seconds(std::max(0.0, distance_m) / speed_);
}

Duration BellhopLitePropagation::min_delay(double distance_m, double max_depth_m) const {
  const double dist = std::max(0.0, distance_m);
  // A refracted arc between endpoints in [0, max_depth] can dip past the
  // endpoint depths by its sagitta; with arc radii c/g >~ 15 km (the
  // kMinGradient floor in compute()) the dip over interference-scale
  // ranges is metres, so 5% of the range is a generous widening.
  const double depth_hi = std::max(0.0, max_depth_m) + 0.05 * dist;
  // The straight-path fallback integrates the true profile's slowness and
  // the arc solve uses a linear fit through the endpoint speeds; both stay
  // within the sampled max over the widened range up to interpolation
  // error, which the 0.5% factor dominates by orders of magnitude.
  constexpr double kSafety = 1.005;
  const double c_max = profile_->max_speed(0.0, depth_hi) * kSafety;
  return Duration::from_seconds(dist / c_max);
}

PropagationModel::Path surface_echo_path(const PropagationModel& model, const Vec3& from,
                                         const Vec3& to, double freq_khz,
                                         double reflection_loss_db) {
  const Vec3 image{from.x, from.y, -from.z};
  PropagationModel::Path path = model.compute(image, to, freq_khz);
  path.loss_db += reflection_loss_db;
  return path;
}

PropagationModel::Path StraightLinePropagation::compute(const Vec3& from, const Vec3& to,
                                                        double freq_khz) const {
  const double dist = from.distance_to(to);
  return Path{
      .delay = Duration::from_seconds(dist / speed_),
      .loss_db = transmission_loss_db(dist, freq_khz, spreading_),
      .length_m = dist,
  };
}

PropagationModel::Path BellhopLitePropagation::straight_path(const Vec3& from, const Vec3& to,
                                                             double freq_khz) const {
  const double dist = from.distance_to(to);
  const double slowness = profile_->mean_slowness(from.z, to.z);
  return Path{
      .delay = Duration::from_seconds(dist * slowness),
      .loss_db = transmission_loss_db(dist, freq_khz, spreading_),
      .length_m = dist,
  };
}

PropagationModel::Path BellhopLitePropagation::compute(const Vec3& from, const Vec3& to,
                                                       double freq_khz) const {
  const double za = from.z;
  const double zb = to.z;
  const double r = from.horizontal_distance_to(to);

  // Local constant-gradient fit between the endpoint depths.
  const double ca = profile_->speed_at(za);
  const double cb = profile_->speed_at(zb);
  const double g = (std::abs(zb - za) > 1e-6) ? (cb - ca) / (zb - za)
                                              : profile_->gradient_at(za);

  constexpr double kMinGradient = 1e-4;  // 1/s; below this the arc radius
                                         // exceeds ~1.5e7 m and the chord
                                         // is indistinguishable from it.
  if (std::abs(g) < kMinGradient) return straight_path(from, to, freq_khz);

  // Depth at which the extrapolated profile vanishes; ray circles are
  // centred on this depth.
  const double z_star = za - ca / g;

  if (r < 1e-6) {
    // Vertical path: t = (1/g) ln(c(zb)/c(za)), exact for linear c(z).
    if (std::abs(zb - za) < 1e-9) {
      return Path{Duration::zero(), transmission_loss_db(1.0, freq_khz, spreading_), 0.0};
    }
    const double t = std::abs(std::log(cb / ca) / g);
    const double dist = std::abs(zb - za);
    return Path{Duration::from_seconds(t),
                transmission_loss_db(dist, freq_khz, spreading_), dist};
  }

  // Circle through (0, za) and (r, zb) with centre on depth z_star:
  // perpendicular-bisector intersection gives the centre abscissa.
  const double dza = za - z_star;
  const double dzb = zb - z_star;
  const double xc = (r * r + dzb * dzb - dza * dza) / (2.0 * r);
  const double radius = std::hypot(xc, dza);

  // Angles from the centre; z - z_star = R sin(theta) by construction.
  const double theta_a = std::atan2(dza, 0.0 - xc);
  const double theta_b = std::atan2(dzb, r - xc);

  const double ta = std::tan(theta_a / 2.0);
  const double tb = std::tan(theta_b / 2.0);
  // The ray must stay on one side of the c = 0 depth; if the half-angle
  // tangents differ in sign or vanish the arc solve is degenerate.
  if (!(ta * tb > 0.0) || !std::isfinite(ta) || !std::isfinite(tb)) {
    return straight_path(from, to, freq_khz);
  }

  const double travel_time = std::abs(std::log(tb / ta) / g);
  const double arc_len = radius * std::abs(theta_b - theta_a);

  if (!std::isfinite(travel_time) || !std::isfinite(arc_len) || travel_time <= 0.0) {
    return straight_path(from, to, freq_khz);
  }

  // Sanity: the bent path cannot be shorter than the chord; numerical
  // degeneracy (near-collinear centre) falls back to the chord.
  const double chord = from.distance_to(to);
  if (arc_len + 1e-6 < chord) return straight_path(from, to, freq_khz);

  return Path{
      .delay = Duration::from_seconds(travel_time),
      .loss_db = transmission_loss_db(arc_len, freq_khz, spreading_),
      .length_m = arc_len,
  };
}

}  // namespace aquamac

#pragma once
// Frequency-dependent acoustic absorption and path attenuation.
//
// Transmission loss follows the standard parametrization
//   TL(d, f) = k * 10 log10(d) + d_km * alpha(f)        [dB, d in metres]
// with spreading factor k (1 = cylindrical, 1.5 = practical, 2 = spherical)
// and absorption alpha in dB/km from either Thorp's formula (the classic
// UASN choice, valid a few hundred Hz .. ~50 kHz) or the simplified
// Fisher-Simmons form with explicit relaxation terms.

namespace aquamac {

/// Thorp (1967) absorption in dB/km at frequency f in kHz.
[[nodiscard]] double thorp_absorption_db_per_km(double freq_khz);

/// Fisher & Simmons (1977) style absorption in dB/km, at 1 atm, with
/// boric-acid and magnesium-sulfate relaxation plus pure-water viscosity,
/// parameterized by temperature (deg C). Salinity 35 ppt, pH 8 assumed.
[[nodiscard]] double fisher_simmons_absorption_db_per_km(double freq_khz,
                                                         double temperature_c = 10.0);

enum class Spreading { kCylindrical, kPractical, kSpherical };

[[nodiscard]] constexpr double spreading_factor(Spreading s) {
  switch (s) {
    case Spreading::kCylindrical: return 1.0;
    case Spreading::kPractical: return 1.5;
    case Spreading::kSpherical: return 2.0;
  }
  return 1.5;
}

/// Total transmission loss in dB over `distance_m` metres at `freq_khz`.
/// Distances below 1 m are clamped (TL is referenced to 1 m).
[[nodiscard]] double transmission_loss_db(double distance_m, double freq_khz,
                                          Spreading spreading = Spreading::kPractical);

/// Inverse link budget: the largest distance whose transmission loss does
/// not exceed `loss_budget_db`, found by bisection (TL is strictly
/// increasing in distance). Conservative: the returned radius is at or
/// just past the crossing, so every point with TL <= budget lies inside
/// it. Clamped to [1 m, 1e7 m]; budgets below TL(1 m) return 1 m.
[[nodiscard]] double max_range_for_loss_db(double loss_budget_db, double freq_khz,
                                           Spreading spreading = Spreading::kPractical);

}  // namespace aquamac

#!/usr/bin/env bash
# Format wall: clang-format --dry-run over the C++ files changed relative
# to a base ref (default: origin/main, falling back to HEAD~1). Only
# changed files are checked so the wall never blocks on legacy formatting;
# stragglers get normalized the first time they are touched.
#
# Usage: check_format.sh [base-ref]
# Env:   CLANG_FORMAT=clang-format-16   STRICT=1 (fail if tool missing)
set -u

BASE="${1:-}"
if [ -z "$BASE" ]; then
  if git rev-parse --verify -q origin/main >/dev/null; then
    BASE=origin/main
  else
    BASE=HEAD~1
  fi
fi

CF="${CLANG_FORMAT:-}"
if [ -z "$CF" ]; then
  for cand in clang-format clang-format-18 clang-format-17 clang-format-16 \
              clang-format-15 clang-format-14; do
    if command -v "$cand" >/dev/null 2>&1; then CF="$cand"; break; fi
  done
fi
if [ -z "$CF" ]; then
  echo "check_format: clang-format not found; skipping (set CLANG_FORMAT or install it)"
  [ "${STRICT:-0}" = "1" ] && exit 1
  exit 0
fi

mapfile -t files < <(git diff --name-only --diff-filter=ACMR "$BASE"...HEAD -- \
                       '*.cpp' '*.hpp' '*.cc' '*.h' | grep -v '^tools/lint/testdata/')
if [ "${#files[@]}" -eq 0 ]; then
  echo "check_format: no changed C++ files vs $BASE"
  exit 0
fi

fail=0
for f in "${files[@]}"; do
  [ -f "$f" ] || continue
  if ! "$CF" --dry-run -Werror "$f" 2>/dev/null; then
    echo "check_format: NEEDS FORMAT $f"
    "$CF" --dry-run "$f" 2>&1 | head -20
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_format: FAIL — run: $CF -i <files>"
  exit 1
fi
echo "check_format: ${#files[@]} changed file(s) clean"

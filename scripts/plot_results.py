#!/usr/bin/env python3
"""Plot aquamac sweep CSVs (from `aquamac_compare --csv` or the bench
binaries piped through `print_csv`) as paper-style line figures.

Usage:
    tools/aquamac_compare --x load --metric throughput --csv fig6.csv
    scripts/plot_results.py fig6.csv --ylabel "Throughput (kbps)" -o fig6.png

Input format: header row `x,PROTO1,PROTO2,...`, one numeric row per x.
Requires matplotlib (not needed for the simulation itself).
"""

import argparse
import csv
import sys


def load(path):
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    if len(rows) < 2:
        raise SystemExit(f"{path}: no data rows")
    header = rows[0]
    xs = [float(r[0]) for r in rows[1:]]
    series = {
        name: [float(r[i]) for r in rows[1:]]
        for i, name in enumerate(header[1:], start=1)
    }
    return header[0], xs, series


STYLES = {
    "S-FAMA": dict(marker="s", linestyle="--"),
    "ROPA": dict(marker="^", linestyle="-."),
    "CS-MAC": dict(marker="o", linestyle=":"),
    "EW-MAC": dict(marker="*", linestyle="-"),
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv", help="sweep CSV (x column + one column per protocol)")
    parser.add_argument("-o", "--output", help="output image (default: <csv>.png)")
    parser.add_argument("--xlabel", default=None)
    parser.add_argument("--ylabel", default="metric")
    parser.add_argument("--title", default=None)
    args = parser.parse_args()

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        raise SystemExit("matplotlib is required: pip install matplotlib")

    x_name, xs, series = load(args.csv)
    fig, ax = plt.subplots(figsize=(6, 4.2))
    for name, ys in series.items():
        ax.plot(xs, ys, label=name, **STYLES.get(name, dict(marker=".")))
    ax.set_xlabel(args.xlabel or x_name)
    ax.set_ylabel(args.ylabel)
    if args.title:
        ax.set_title(args.title)
    ax.grid(True, alpha=0.3)
    ax.legend()
    fig.tight_layout()

    output = args.output or (args.csv.rsplit(".", 1)[0] + ".png")
    fig.savefig(output, dpi=150)
    print(f"wrote {output}")


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Plot aquamac sweep results as paper-style line figures.

Accepts either:
  * sweep CSVs from `aquamac_compare --csv` (or bench tables piped
    through `print_csv`): header row `x,PROTO1,PROTO2,...`, one numeric
    row per x;
  * BENCH_*.json files emitted by the bench binaries (schema
    aquamac-bench-v1): pick the metric with --metric (defaults to the
    file's first series);
  * BENCH_fault.json degradation curves (schema aquamac-bench-fault-v1):
    one sweep per fault axis — pick the axis with --axis (defaults to
    the file's first axis, drift_ppm);
  * BENCH_multihop.json routing comparisons (schema
    aquamac-bench-multihop-v1): grouped bars of one metric per routing
    kind — pick the experiment with --axis (grid or outage) and the
    metric with --metric (defaults to delivery_ratio);
  * BENCH_reliability.json ARQ degradation curves (schema
    aquamac-bench-reliability-v1): one line per arm (arq vs noarq) —
    pick the experiment with --axis (loss or storm) and the metric
    with --metric (defaults to delivery_ratio).

Usage:
    tools/aquamac_compare --x load --metric throughput --csv fig6.csv
    scripts/plot_results.py fig6.csv --ylabel "Throughput (kbps)" -o fig6.png
    scripts/plot_results.py BENCH_fig6_throughput_load.json --metric throughput_kbps
    scripts/plot_results.py BENCH_fault.json --axis outage_per_hour
    scripts/plot_results.py BENCH_multihop.json --axis outage --metric delivery_ratio

Requires matplotlib (not needed for the simulation itself).
"""

import argparse
import csv
import json
import sys


def load_csv(path):
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    if len(rows) < 2:
        raise SystemExit(f"{path}: no data rows")
    header = rows[0]
    xs = [float(r[0]) for r in rows[1:]]
    series = {
        name: [float(r[i]) for r in rows[1:]]
        for i, name in enumerate(header[1:], start=1)
    }
    return header[0], xs, series


def load_fault_json(doc, path, metric=None, axis=None):
    axes = doc.get("axes", {})
    if not axes:
        raise SystemExit(f"{path}: no axes")
    if axis is None:
        axis = next(iter(axes))
    if axis not in axes:
        raise SystemExit(f"{path}: no axis {axis!r}; available: {', '.join(axes)}")
    all_series = axes[axis].get("series", {})
    if metric is None:
        metric = next(iter(all_series))
    if metric not in all_series:
        raise SystemExit(
            f"{path}: no metric {metric!r}; available: {', '.join(all_series)}"
        )
    if not doc.get("monotone_ok"):
        print(f"warning: {path} recorded a failed monotone gate", file=sys.stderr)
    return axis, axes[axis]["xs"], all_series[metric], metric, None


def load_multihop_json(doc, path, metric=None, axis=None):
    """Categorical schema: experiment -> series -> metric -> routing kind.

    Returned as one bar per routing kind; `ticks` carries the kind names.
    """
    experiments = {k: v for k, v in doc.items() if isinstance(v, dict) and "series" in v}
    if not experiments:
        raise SystemExit(f"{path}: no experiments")
    if axis is None:
        axis = next(iter(experiments))
    if axis not in experiments:
        raise SystemExit(
            f"{path}: no experiment {axis!r}; available: {', '.join(experiments)}"
        )
    all_series = experiments[axis]["series"]
    if metric is None:
        metric = "delivery_ratio" if "delivery_ratio" in all_series else next(iter(all_series))
    if metric not in all_series:
        raise SystemExit(
            f"{path}: no metric {metric!r}; available: {', '.join(all_series)}"
        )
    by_kind = all_series[metric]
    if axis == "grid" and not experiments[axis].get("dv_delivery_ok"):
        print(f"warning: {path} recorded a failed grid delivery gate", file=sys.stderr)
    if axis == "outage" and not experiments[axis].get("dv_beats_greedy"):
        print(f"warning: {path} recorded dv not beating greedy", file=sys.stderr)
    ticks = list(by_kind)
    return axis, list(range(len(ticks))), {metric: list(by_kind.values())}, metric, ticks


def load_reliability_json(doc, path, metric=None, axis=None):
    """ARQ-vs-baseline schema: experiment -> {arq, noarq} -> metric -> ys.

    Plots one line per arm so the degradation gap is visible; defaults to
    the loss sweep's delivery_ratio.
    """
    experiments = {k: v for k, v in doc.items() if isinstance(v, dict) and "arq" in v}
    if not experiments:
        raise SystemExit(f"{path}: no experiments")
    if axis is None:
        axis = "loss" if "loss" in experiments else next(iter(experiments))
    if axis not in experiments:
        raise SystemExit(
            f"{path}: no experiment {axis!r}; available: {', '.join(experiments)}"
        )
    exp = experiments[axis]
    arms = {k: v for k, v in exp.items() if isinstance(v, dict)}
    if metric is None:
        metric = "delivery_ratio"
    first = next(iter(arms.values()))
    if metric not in first:
        raise SystemExit(
            f"{path}: no metric {metric!r}; available: {', '.join(first)}"
        )
    for gate in ("monotone_ok", "beats_baseline_ok"):
        if gate in exp and not exp[gate]:
            print(f"warning: {path} recorded a failed {gate} gate", file=sys.stderr)
    if not doc.get("shard_invariant", 1):
        print(f"warning: {path} recorded a shard-variant run", file=sys.stderr)
    xs = exp.get("xs", list(range(len(first[metric]))))
    return axis, xs, {arm: ys[metric] for arm, ys in arms.items()}, metric, None


def load_bench_json(path, metric=None, axis=None):
    with open(path) as handle:
        doc = json.load(handle)
    schema = doc.get("schema")
    if schema == "aquamac-bench-multihop-v1":
        return load_multihop_json(doc, path, metric, axis)
    if schema == "aquamac-bench-fault-v1":
        return load_fault_json(doc, path, metric, axis)
    if schema == "aquamac-bench-reliability-v1":
        return load_reliability_json(doc, path, metric, axis)
    if schema != "aquamac-bench-v1":
        raise SystemExit(f"{path}: unknown schema {schema!r}")
    all_series = doc.get("series", {})
    if not all_series:
        raise SystemExit(f"{path}: no series")
    if metric is None:
        metric = next(iter(all_series))
    if metric not in all_series:
        raise SystemExit(
            f"{path}: no metric {metric!r}; available: {', '.join(all_series)}"
        )
    wall = doc.get("wall_s")
    jobs = doc.get("jobs")
    if wall is not None and jobs is not None:
        print(f"{doc.get('bench')}: {doc.get('total_runs')} runs in {wall:.3g} s "
              f"(jobs={jobs})")
    return "x", doc["xs"], all_series[metric], metric, None


def load(path, metric=None, axis=None):
    if path.endswith(".json"):
        return load_bench_json(path, metric, axis)
    x_name, xs, series = load_csv(path)
    return x_name, xs, series, None, None


STYLES = {
    "S-FAMA": dict(marker="s", linestyle="--"),
    "ROPA": dict(marker="^", linestyle="-."),
    "CS-MAC": dict(marker="o", linestyle=":"),
    "EW-MAC": dict(marker="*", linestyle="-"),
    "MACA-U": dict(marker="v", linestyle="--"),
}


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "input", help="sweep CSV, or a BENCH_*.json from the bench binaries"
    )
    parser.add_argument("-o", "--output", help="output image (default: <input>.png)")
    parser.add_argument(
        "--metric",
        default=None,
        help="series to plot from a BENCH_*.json (default: its first metric)",
    )
    parser.add_argument(
        "--axis",
        default=None,
        help="fault axis to plot from a BENCH_fault.json (default: its first axis)",
    )
    parser.add_argument("--xlabel", default=None)
    parser.add_argument("--ylabel", default=None)
    parser.add_argument("--title", default=None)
    args = parser.parse_args()

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        raise SystemExit("matplotlib is required: pip install matplotlib")

    x_name, xs, series, metric, ticks = load(args.input, args.metric, args.axis)
    fig, ax = plt.subplots(figsize=(6, 4.2))
    if ticks is not None:
        for name, ys in series.items():
            ax.bar(xs, ys, width=0.6, label=name)
        ax.set_xticks(xs)
        ax.set_xticklabels(ticks)
    else:
        for name, ys in series.items():
            ax.plot(xs, ys, label=name, **STYLES.get(name, dict(marker=".")))
    ax.set_xlabel(args.xlabel or x_name)
    ax.set_ylabel(args.ylabel or metric or "metric")
    if args.title:
        ax.set_title(args.title)
    ax.grid(True, alpha=0.3)
    ax.legend()
    fig.tight_layout()

    output = args.output or (args.input.rsplit(".", 1)[0] + ".png")
    fig.savefig(output, dpi=150)
    print(f"wrote {output}")


if __name__ == "__main__":
    sys.exit(main())

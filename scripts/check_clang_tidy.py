#!/usr/bin/env python3
"""clang-tidy wall: run the curated .clang-tidy profile over src/,
tools/ and bench/ via compile_commands.json and fail on any finding NOT
in the committed baseline (tools/lint/clang-tidy-baseline.txt).

Findings are matched by a stable fingerprint — sha1 over (relative path,
check name, whitespace-normalized source line text) — so a finding
survives unrelated edits above it but a genuinely new finding on an old
line still trips the wall.

Usage:
  check_clang_tidy.py [--build-dir build] [--update-baseline] [--jobs N]

Exit codes: 0 wall holds (or clang-tidy unavailable and not --strict),
1 new findings (or stale baseline with --strict), 2 setup error.
"""

import argparse
import concurrent.futures
import hashlib
import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "tools" / "lint" / "clang-tidy-baseline.txt"
FINDING_RE = re.compile(
    r"^(?P<path>[^:\s][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<msg>.*?) \[(?P<check>[\w.,-]+)\]$")


def find_clang_tidy():
    import os
    for cand in [os.environ.get("CLANG_TIDY", ""), "clang-tidy",
                 "clang-tidy-18", "clang-tidy-17", "clang-tidy-16",
                 "clang-tidy-15", "clang-tidy-14"]:
        if cand and shutil.which(cand):
            return shutil.which(cand)
    return None


def fingerprint(relpath: str, check: str, source_line: str) -> str:
    normalized = " ".join(source_line.split())
    digest = hashlib.sha1(
        f"{relpath}\0{check}\0{normalized}".encode()).hexdigest()[:16]
    return digest


def source_line(path: Path, line_no: int) -> str:
    try:
        lines = path.read_text(errors="replace").splitlines()
        return lines[line_no - 1] if 0 < line_no <= len(lines) else ""
    except OSError:
        return ""


def run_one(clang_tidy: str, build_dir: Path, src: str) -> str:
    proc = subprocess.run(
        [clang_tidy, "-p", str(build_dir), "--quiet", src],
        capture_output=True, text=True)
    return proc.stdout


def collect_findings(clang_tidy: str, build_dir: Path, jobs: int):
    with open(build_dir / "compile_commands.json") as fh:
        commands = json.load(fh)
    scoped = ("/src/", "/tools/", "/bench/")
    sources = sorted({
        entry["file"] for entry in commands
        if any(d in entry["file"].replace("\\", "/") for d in scoped)})
    if not sources:
        print("check_clang_tidy: no src/tools/bench entries in "
              "compile_commands.json", file=sys.stderr)
        sys.exit(2)

    findings = {}
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for out in pool.map(
                lambda s: run_one(clang_tidy, build_dir, s), sources):
            for line in out.splitlines():
                m = FINDING_RE.match(line)
                if not m:
                    continue
                path = Path(m.group("path")).resolve()
                try:
                    rel = str(path.relative_to(REPO))
                except ValueError:
                    continue  # system header noise
                if not rel.startswith(("src/", "tools/", "bench/")):
                    continue
                for check in m.group("check").split(","):
                    text = source_line(path, int(m.group("line")))
                    fp = fingerprint(rel, check, text)
                    findings.setdefault(fp, (rel, check, text, m.group("msg")))
    return findings


def load_baseline():
    baseline = {}
    if BASELINE.exists():
        for raw in BASELINE.read_text().splitlines():
            raw = raw.strip()
            if not raw or raw.startswith("#"):
                continue
            fp = raw.split()[0]
            baseline[fp] = raw
    return baseline


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--jobs", type=int, default=4)
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument("--strict", action="store_true",
                    help="also fail when clang-tidy is unavailable or the "
                         "baseline has stale entries")
    args = ap.parse_args()

    clang_tidy = find_clang_tidy()
    if clang_tidy is None:
        print("check_clang_tidy: clang-tidy not found; skipping"
              " (install clang-tidy or set CLANG_TIDY)")
        return 1 if args.strict else 0

    build_dir = (REPO / args.build_dir).resolve()
    if not (build_dir / "compile_commands.json").exists():
        print(f"check_clang_tidy: {build_dir}/compile_commands.json missing; "
              "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON",
              file=sys.stderr)
        return 2

    findings = collect_findings(clang_tidy, build_dir, args.jobs)
    baseline = load_baseline()

    if args.update_baseline:
        header = [l for l in BASELINE.read_text().splitlines()
                  if l.startswith("#")] if BASELINE.exists() else []
        body = [f"{fp}  {rel} [{check}] {' '.join(text.split())}"
                for fp, (rel, check, text, _msg) in sorted(
                    findings.items(), key=lambda kv: kv[1])]
        BASELINE.write_text("\n".join(header + body) + "\n")
        print(f"check_clang_tidy: baseline updated with {len(body)} finding(s)")
        return 0

    new = {fp: v for fp, v in findings.items() if fp not in baseline}
    stale = {fp: v for fp, v in baseline.items() if fp not in findings}

    for fp, (rel, check, text, msg) in sorted(new.items(), key=lambda kv: kv[1]):
        print(f"NEW  {rel} [{check}] {msg}\n     > {text.strip()}")
    if stale:
        print(f"check_clang_tidy: {len(stale)} stale baseline entr(y/ies) — "
              "shrink tools/lint/clang-tidy-baseline.txt:")
        for fp, line in stale.items():
            print(f"STALE  {line}")

    print(f"check_clang_tidy: {len(findings)} finding(s), {len(new)} new, "
          f"{len(baseline)} baselined, {len(stale)} stale")
    if new:
        print("check_clang_tidy: FAIL — fix the new findings or (only with "
              "justification in the PR) add them via --update-baseline")
        return 1
    if stale and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
